module E = Dmx_sim.Engine
module Trace = Dmx_sim.Trace
module Oracle = Dmx_sim.Oracle
module Summary = Dmx_sim.Stats.Summary
module B = Dmx_quorum.Builder

type config = {
  n : int;
  protocol : string;
  quorum : B.kind;
  rounds : int;
  cs_duration : float;
  seed : int;
  kills : (float * int) list;
  restarts : (float * int) list;
  log_dir : string option;
  timeout : float;
  hb_period : float;
  hb_timeout : float;
  rto : float;
  transport : string;
  chaos : Chaos.plan;
  hello_timeout : float;
  ports : int list option;
  metrics_base_port : int;
}

let default ~n =
  {
    n;
    protocol = "ft-delay-optimal";
    quorum = B.Tree;
    rounds = 20;
    cs_duration = 0.001;
    seed = 42;
    kills = [];
    restarts = [];
    log_dir = None;
    timeout = 60.0;
    hb_period = 0.1;
    hb_timeout = 1.0;
    rto = 0.25;
    transport = "tcp";
    chaos = Chaos.no_faults;
    hello_timeout = 10.0;
    ports = None;
    metrics_base_port = 0;
  }

type outcome = {
  report : E.report;
  verdict : Oracle.verdict;
  entries : Trace.entry list;
  wall_seconds : float;
  live_stats : (string * int) list array;
  snapshots : Dmx_obs.Snapshot.t array;
}

let merged_snapshot o = Dmx_obs.Snapshot.merge_all (Array.to_list o.snapshots)

(* ---- child process management (shared plumbing in Spawn) ---- *)

let alloc_ports = Spawn.alloc_ports
let kill_quietly = Spawn.kill_quietly

let spawn_node ~log_dir (spec : Node.spec) =
  Spawn.child ~log_dir
    ~log_name:(Printf.sprintf "node-%d.log" spec.Node.site)
    ~env_var:Node.env_var
    ~spec:(Node.spec_to_string spec)

(* ---- report reconstruction from the merged trace ---- *)

let build_report (cfg : config) ~entries ~kind_totals ~net_duration =
  let per_site = Array.make cfg.n 0 in
  let request_at = Array.make cfg.n Float.nan in
  let response = Summary.create () in
  let sync = Summary.create () in
  let unavail = Summary.create () in
  let parked_at = Array.make cfg.n Float.nan in
  let total_messages = ref 0 in
  let suspicions = ref 0 in
  let false_suspicions = ref 0 in
  (* dead windows, from the supervisor's own Crash/Recover entries *)
  let dead_since = Array.make cfg.n Float.nan in
  let waiting = Array.make cfg.n false in
  let open_handoff = ref Float.nan in
  let first_event = ref Float.nan in
  let last_event = ref Float.nan in
  List.iter
    (fun (e : Trace.entry) ->
      let t = e.Trace.time in
      if Float.is_nan !first_event then first_event := t;
      last_event := t;
      let site = e.Trace.site in
      match e.Trace.kind with
      | Trace.Request ->
        request_at.(site) <- t;
        waiting.(site) <- true
      | Trace.Enter_cs ->
        per_site.(site) <- per_site.(site) + 1;
        waiting.(site) <- false;
        if not (Float.is_nan request_at.(site)) then begin
          Summary.add response (t -. request_at.(site));
          request_at.(site) <- Float.nan
        end;
        if not (Float.is_nan !open_handoff) then begin
          Summary.add sync (t -. !open_handoff);
          open_handoff := Float.nan
        end
      | Trace.Exit_cs ->
        if Array.exists Fun.id waiting then open_handoff := t
      | Trace.Send { dst; _ } -> if dst <> site then incr total_messages
      | Trace.Suspect s ->
        incr suspicions;
        if Float.is_nan dead_since.(s) then incr false_suspicions
      | Trace.Crash ->
        dead_since.(site) <- t;
        waiting.(site) <- false;
        request_at.(site) <- Float.nan
      | Trace.Recover -> dead_since.(site) <- Float.nan
      | Trace.Note note ->
        if note = "parked" then parked_at.(site) <- t
        else if note = "unparked" && not (Float.is_nan parked_at.(site))
        then begin
          Summary.add unavail (t -. parked_at.(site));
          parked_at.(site) <- Float.nan
        end
      | _ -> ())
    entries;
  let executions = Array.fold_left ( + ) 0 per_site in
  let fairness =
    let xs =
      Array.to_list per_site
      |> List.filter (fun x -> x > 0)
      |> List.map float_of_int
    in
    match xs with
    | [] -> 1.0
    | xs ->
      let sum = List.fold_left ( +. ) 0.0 xs in
      let sq = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
      sum *. sum /. (float_of_int (List.length xs) *. sq)
  in
  let assoc_get k l = Option.value ~default:0 (List.assoc_opt k l) in
  let window =
    if Float.is_nan !first_event then net_duration
    else !last_event -. !first_event
  in
  {
    E.protocol = cfg.protocol;
    params = Format.asprintf "%a quorums, live cluster" B.pp_kind cfg.quorum;
    n = cfg.n;
    executions;
    total_messages = !total_messages;
    messages_by_kind = List.filter (fun (_, v) -> v > 0) kind_totals;
    messages_per_cs =
      (if executions = 0 then 0.0
       else float_of_int !total_messages /. float_of_int executions);
    sync_delay = sync;
    response_time = response;
    throughput =
      (if window > 0.0 then float_of_int executions /. window else 0.0);
    sim_time = net_duration;
    mean_delay = 1.0;
    violations = 0 (* patched in by the caller's occupancy scan *);
    deadlocked = false;
    pending_at_end =
      Array.to_list waiting |> List.filter Fun.id |> List.length;
    per_site_executions = per_site;
    fairness;
    retransmissions = assoc_get "retx" kind_totals;
    acks = assoc_get "ack" kind_totals;
    detector_messages = 0;
    suspicions = !suspicions;
    false_suspicions = !false_suspicions;
    unavailability = unavail;
  }

let scan_occupancy (n : int) entries =
  let occ = Dmx_runtime.Occupancy.create () in
  let in_cs = Array.make n false in
  List.iter
    (fun (e : Trace.entry) ->
      let site = e.Trace.site in
      match e.Trace.kind with
      | Trace.Enter_cs ->
        Dmx_runtime.Occupancy.enter occ;
        in_cs.(site) <- true
      | Trace.Exit_cs ->
        if in_cs.(site) then begin
          Dmx_runtime.Occupancy.exit occ;
          in_cs.(site) <- false
        end
      | Trace.Crash ->
        if in_cs.(site) then begin
          Dmx_runtime.Occupancy.exit occ;
          in_cs.(site) <- false
        end
      | _ -> ())
    entries;
  occ

(* ---- the supervisor ---- *)

let validate (cfg : config) =
  if cfg.n < 2 then Error "cluster: need at least 2 sites"
  else if
    not (List.mem cfg.protocol [ "delay-optimal"; "ft-delay-optimal" ])
  then
    Error
      (Printf.sprintf
         "cluster: unknown protocol %S (want delay-optimal or \
          ft-delay-optimal)"
         cfg.protocol)
  else if cfg.rounds < 1 then Error "cluster: rounds must be positive"
  else if not (B.supports cfg.quorum ~n:cfg.n) then
    Error
      (Format.asprintf "cluster: quorum %a does not support n=%d" B.pp_kind
         cfg.quorum cfg.n)
  else if
    List.exists (fun (_, s) -> s < 0 || s >= cfg.n) (cfg.kills @ cfg.restarts)
  then Error "cluster: kill/restart site out of range"
  else if
    List.exists
      (fun (rt, s) ->
        not (List.exists (fun (kt, ks) -> ks = s && kt < rt) cfg.kills))
      cfg.restarts
  then Error "cluster: every restart needs an earlier kill of the same site"
  else if not (List.mem cfg.transport Transports.names) then
    Error
      (Printf.sprintf "cluster: unknown transport %S (want %s)" cfg.transport
         (String.concat " or " Transports.names))
  else if not (cfg.hello_timeout > 0.0) then
    Error "cluster: hello_timeout must be positive"
  else if
    match cfg.ports with
    | Some ps -> List.length ps <> cfg.n + 1
    | None -> false
  then Error "cluster: ports list must have n+1 entries (nodes + supervisor)"
  else
    match Chaos.validate { cfg.chaos with Chaos.n = cfg.n } with
    | () -> Ok ()
    | exception Invalid_argument e -> Error ("cluster: " ^ e)

let run (cfg : config) =
  match validate cfg with
  | Error _ as e -> e
  | Ok () -> (
    let started_wall = Unix.gettimeofday () in
    let epoch = started_wall in
    let ports =
      match cfg.ports with
      | Some ps -> ps
      | None -> alloc_ports (cfg.n + 1)
    in
    let sup_port = List.nth ports cfg.n in
    let node_ports = Array.of_list (List.filteri (fun i _ -> i < cfg.n) ports) in
    let plan =
      {
        cfg.chaos with
        Chaos.n = cfg.n;
        seed = (if cfg.chaos.Chaos.seed = 0 then cfg.seed else cfg.chaos.Chaos.seed);
      }
    in
    let spec_of site =
      {
        Node.site;
        n = cfg.n;
        node_ports;
        supervisor_port = sup_port;
        protocol = cfg.protocol;
        quorum = Format.asprintf "%a" B.pp_kind cfg.quorum;
        seed = cfg.seed;
        epoch;
        hb_period = cfg.hb_period;
        hb_timeout = cfg.hb_timeout;
        rto = cfg.rto;
        max_seconds = cfg.timeout +. 30.0;
        transport = cfg.transport;
        chaos = plan;
        metrics_port =
          (if cfg.metrics_base_port = 0 then 0
           else cfg.metrics_base_port + site);
      }
    in
    let transport =
      Transports.create_exn cfg.transport
        {
          Transport_sig.self = cfg.n;
          listen_port = sup_port;
          peers =
            List.init cfg.n (fun i ->
                (i, Unix.ADDR_INET (Unix.inet_addr_loopback, node_ports.(i))));
          hb_period = cfg.hb_period;
          hb_timeout = cfg.hb_timeout;
          watch = [];
          hello_inc = epoch;
        }
    in
    let pids = Array.make cfg.n None in
    let cleanup () =
      Array.iter (Option.iter kill_quietly) pids;
      Array.fill pids 0 cfg.n None;
      transport.close ()
    in
    try
      Array.iteri
        (fun site _ -> pids.(site) <- Some (spawn_node ~log_dir:cfg.log_dir (spec_of site)))
        pids;
      let now () = Unix.gettimeofday () -. epoch in
      let deadline = cfg.timeout in
      (* supervisor-side state *)
      let hello_inc = Array.make cfg.n Float.nan in
      let site_entries = Array.make cfg.n [] (* batches, newest first *) in
      let extra_entries = ref [] in
      let kind_totals = ref [] in
      let live_stats = Array.make cfg.n [] in
      let snapshots = Array.make cfg.n Dmx_obs.Snapshot.empty in
      let finished = Array.make cfg.n false in
      let dead = Array.make cfg.n false in
      let workload_sent = ref false in
      let workload_t0 = ref 0.0 in
      let add_kinds ks =
        kind_totals :=
          List.fold_left
            (fun acc (k, v) ->
              (k, v + Option.value ~default:0 (List.assoc_opt k acc))
              :: List.remove_assoc k acc)
            !kind_totals ks
      in
      let workload_frame () =
        Wire.Workload
          {
            rounds = cfg.rounds;
            cs_duration = cfg.cs_duration;
            since = !workload_t0;
          }
      in
      let handle_event = function
        | Transport_sig.Frame { frame; _ } -> (
          match frame with
          | Wire.Hello { site; inc } when site >= 0 && site < cfg.n ->
            let newer =
              Float.is_nan hello_inc.(site) || inc > hello_inc.(site)
            in
            if newer then hello_inc.(site) <- inc;
            if !workload_sent then
              transport.send ~dst:site (workload_frame ())
          | Wire.Trace_batch { site; entries } when site >= 0 && site < cfg.n
            ->
            site_entries.(site) <- List.rev_append entries site_entries.(site)
          | Wire.Metrics { site; kinds; reliable; _ }
            when site >= 0 && site < cfg.n ->
            finished.(site) <- true;
            live_stats.(site) <- reliable;
            add_kinds kinds
          | Wire.Metrics_v2 { site; snapshot } when site >= 0 && site < cfg.n
            ->
            snapshots.(site) <- snapshot
          | _ -> ())
        | Transport_sig.Peer_down _ | Transport_sig.Peer_up _ -> ()
      in
      let drain () =
        let rec go () =
          match transport.poll () with
          | Some ev ->
            handle_event ev;
            go ()
          | None -> ()
        in
        go ()
      in
      (* phase 1: all sites say hello, against a dedicated deadline — a
         node that cannot bind its port (or dies on startup) must fail the
         run promptly and by name, not wedge the supervisor *)
      let hello_deadline = Float.min cfg.hello_timeout deadline in
      let startup_death = ref None in
      let check_startup_deaths () =
        Array.iteri
          (fun site pid ->
            match pid with
            | Some pid when Float.is_nan hello_inc.(site) -> (
              match Unix.waitpid [ WNOHANG ] pid with
              | 0, _ -> ()
              | _, status ->
                pids.(site) <- None;
                let what =
                  match status with
                  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
                  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
                  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
                in
                if !startup_death = None then
                  startup_death := Some (site, what)
              | exception _ -> ())
            | _ -> ())
          pids
      in
      while
        Array.exists Float.is_nan hello_inc
        && !startup_death = None
        && now () < hello_deadline
      do
        drain ();
        check_startup_deaths ();
        Unix.sleepf 0.005
      done;
      (match !startup_death with
      | Some (site, what) ->
        failwith
          (Printf.sprintf "node %d died before saying hello (%s)" site what)
      | None -> ());
      if Array.exists Float.is_nan hello_inc then begin
        let missing =
          Array.to_list
            (Array.mapi (fun s inc -> (s, Float.is_nan inc)) hello_inc)
          |> List.filter_map (fun (s, m) -> if m then Some (string_of_int s) else None)
        in
        failwith
          (Printf.sprintf
             "timeout: node(s) %s never said hello within %.1fs"
             (String.concat "," missing) cfg.hello_timeout)
      end;
      (* phase 2: workload, with the kill/restart schedule. The workload
         is rebroadcast periodically: on a datagram transport the first
         copy can be lost, and a restarted node needs one too (nodes treat
         repeats as no-ops). *)
      workload_t0 := now ();
      workload_sent := true;
      transport.broadcast (workload_frame ());
      let last_rebroadcast = ref (now ()) in
      let pending_kills =
        ref (List.sort compare (List.map (fun (t, s) -> (t, s)) cfg.kills))
      in
      let pending_restarts =
        ref (List.sort compare (List.map (fun (t, s) -> (t, s)) cfg.restarts))
      in
      let complete () =
        !pending_kills = [] && !pending_restarts = []
        && Array.for_all Fun.id
             (Array.init cfg.n (fun s -> finished.(s) || dead.(s)))
      in
      while (not (complete ())) && now () < deadline do
        drain ();
        if now () -. !last_rebroadcast >= 1.0 then begin
          last_rebroadcast := now ();
          Array.iteri
            (fun site fin ->
              if (not fin) && not dead.(site) then
                transport.send ~dst:site (workload_frame ()))
            finished
        end;
        let rel = now () -. !workload_t0 in
        (match !pending_kills with
        | (t, site) :: rest when rel >= t ->
          pending_kills := rest;
          (match pids.(site) with
          | Some pid ->
            kill_quietly pid;
            pids.(site) <- None
          | None -> ());
          dead.(site) <- true;
          finished.(site) <- false;
          extra_entries :=
            { Trace.time = now (); site; kind = Trace.Crash }
            :: !extra_entries
        | _ -> ());
        (match !pending_restarts with
        | (t, site) :: rest when rel >= t ->
          pending_restarts := rest;
          if dead.(site) then begin
            pids.(site) <- Some (spawn_node ~log_dir:cfg.log_dir (spec_of site));
            dead.(site) <- false;
            extra_entries :=
              { Trace.time = now (); site; kind = Trace.Recover }
              :: !extra_entries
          end
        | _ -> ());
        Unix.sleepf 0.002
      done;
      if not (complete ()) then
        failwith
          (Printf.sprintf "timeout: %d/%d sites finished"
             (Array.to_list finished |> List.filter Fun.id |> List.length)
             cfg.n);
      (* phase 3: shutdown, final trace batches, reap. Shutdown goes out
         three times: on a datagram transport one copy can be lost, and a
         node that misses all three still exits on supervisor silence. *)
      transport.broadcast Wire.Shutdown;
      let shutdowns_left = ref 2 in
      let next_shutdown = ref (Unix.gettimeofday () +. 0.2) in
      let grace = Unix.gettimeofday () +. 5.0 in
      let all_reaped () =
        Array.for_all
          (function
            | None -> true
            | Some pid -> (
              match Unix.waitpid [ WNOHANG ] pid with
              | 0, _ -> false
              | _ -> true
              | exception _ -> true))
          pids
      in
      let reaped = ref false in
      while (not !reaped) && Unix.gettimeofday () < grace do
        drain ();
        if !shutdowns_left > 0 && Unix.gettimeofday () >= !next_shutdown
        then begin
          decr shutdowns_left;
          next_shutdown := Unix.gettimeofday () +. 0.2;
          transport.broadcast Wire.Shutdown
        end;
        if all_reaped () then reaped := true else Unix.sleepf 0.01
      done;
      Array.iter (Option.iter kill_quietly) pids;
      Array.fill pids 0 cfg.n None;
      (* one last drain: batches already accepted by our reader threads *)
      Unix.sleepf 0.05;
      drain ();
      transport.close ();
      let entries =
        Array.to_list site_entries
        |> List.concat_map List.rev
        |> List.append !extra_entries
        |> List.stable_sort (fun (a : Trace.entry) b ->
               Float.compare a.Trace.time b.Trace.time)
      in
      let net_duration = now () in
      let occ = scan_occupancy cfg.n entries in
      let crashy = cfg.kills <> [] in
      (* the chaos shim injects loss/duplication/reordering at the wire
         level, where the per-channel FIFO matcher cannot see through it
         (a retransmitted copy is a distinct send, a duplicated datagram
         a receive with no unconsumed send) — relax FIFO exactly as the
         simulator does for fault plans with duplication; custody is
         protocol-level, downstream of the reliability layer's in-order
         exactly-once delivery, so it stays on unless sites are killed *)
      let lossy = not (Chaos.is_trivial plan) in
      let verdict =
        Oracle.check
          {
            (Oracle.default ~n:cfg.n) with
            Oracle.fifo = not (crashy || lossy);
            custody = not crashy;
          }
          entries ~truncated:false
      in
      let report =
        {
          (build_report cfg ~entries ~kind_totals:!kind_totals ~net_duration) with
          E.violations = Dmx_runtime.Occupancy.violations occ;
        }
      in
      Ok
        {
          report;
          verdict;
          entries;
          wall_seconds = Unix.gettimeofday () -. started_wall;
          live_stats;
          snapshots;
        }
    with
    | Failure msg ->
      cleanup ();
      Error ("cluster: " ^ msg)
    | e ->
      cleanup ();
      Error ("cluster: " ^ Printexc.to_string e))

(* Fleet totals come from the registry snapshots (summed series-wise by
   [Snapshot.merge]); the legacy per-site alists are only a fallback for
   an outcome whose nodes predate Metrics_v2. *)
let live_totals o =
  match merged_snapshot o with
  | [] ->
    Array.fold_left
      (fun acc site_stats ->
        List.fold_left
          (fun acc (k, v) ->
            (k, v + Option.value ~default:0 (List.assoc_opt k acc))
            :: List.remove_assoc k acc)
          acc site_stats)
      [] o.live_stats
    |> List.sort compare
  | merged -> Dmx_obs.Snapshot.to_alist merged

let pp_outcome ppf o =
  Format.fprintf ppf "%a@.occupancy: violations=%d entries=%d wall=%.2fs"
    E.pp_report o.report o.report.E.violations (List.length o.entries)
    o.wall_seconds;
  (match live_totals o with
  | [] -> ()
  | totals ->
    Format.fprintf ppf "@.live counters:";
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) totals);
  Format.fprintf ppf "@.%a" Oracle.pp_verdict o.verdict
