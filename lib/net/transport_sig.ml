type event =
  | Frame of { src : int; frame : Wire.frame }
  | Peer_down of int
  | Peer_up of int

type config = {
  self : int;
  listen_port : int;
  peers : (int * Unix.sockaddr) list;
  hb_period : float;
  hb_timeout : float;
  watch : int list;
  hello_inc : float;
}

type stats = {
  frames_sent : int;
  frames_received : int;
  oversize_dropped : int;
  undecodable : int;
  bytes_sent : int;
  bytes_received : int;
  connects : int;
  silences : int;
}

let no_stats =
  {
    frames_sent = 0;
    frames_received = 0;
    oversize_dropped = 0;
    undecodable = 0;
    bytes_sent = 0;
    bytes_received = 0;
    connects = 0;
    silences = 0;
  }

let stats_alist ~prefix s =
  List.filter
    (fun (_, v) -> v > 0)
    [
      (prefix ^ ".sent", s.frames_sent);
      (prefix ^ ".received", s.frames_received);
      (prefix ^ ".oversize", s.oversize_dropped);
      (prefix ^ ".undecodable", s.undecodable);
      (prefix ^ ".bytes_sent", s.bytes_sent);
      (prefix ^ ".bytes_received", s.bytes_received);
      (prefix ^ ".connects", s.connects);
      (prefix ^ ".silences", s.silences);
    ]

module type S = sig
  type t

  val create : config -> t
  val send : t -> dst:int -> Wire.frame -> unit
  val broadcast : t -> Wire.frame -> unit
  val poll : t -> event option
  val stats : t -> stats
  val close : t -> unit
end

type handle = {
  send : dst:int -> Wire.frame -> unit;
  broadcast : Wire.frame -> unit;
  poll : unit -> event option;
  stats : unit -> stats;
  close : unit -> unit;
}

let handle (type a) (module T : S with type t = a) (t : a) =
  {
    send = (fun ~dst frame -> T.send t ~dst frame);
    broadcast = (fun frame -> T.broadcast t frame);
    poll = (fun () -> T.poll t);
    stats = (fun () -> T.stats t);
    close = (fun () -> T.close t);
  }

(* Register every stats field of a handle as registry probes. Probes are
   polled at snapshot time only — the transport keeps its own atomics and
   pays nothing extra on the hot path. *)
let register_obs ?labels reg ~prefix (h : handle) =
  let p name read = Dmx_obs.Registry.probe ?labels reg (prefix ^ name) (fun () -> read (h.stats ())) in
  p ".sent" (fun s -> s.frames_sent);
  p ".received" (fun s -> s.frames_received);
  p ".oversize" (fun s -> s.oversize_dropped);
  p ".undecodable" (fun s -> s.undecodable);
  p ".bytes_sent" (fun s -> s.bytes_sent);
  p ".bytes_received" (fun s -> s.bytes_received);
  p ".connects" (fun s -> s.connects);
  p ".silences" (fun s -> s.silences)

(* ---- shared event-queue + silence-detection state ----

   Both concrete transports (TCP streams, UDP datagrams) hand delivery
   and failure detection through the same machinery: reader threads push
   events and record when each peer was last heard; the owner's [poll]
   drains the queue and, at most once per [hb_period], scans the watched
   peers for heartbeat silence. Heartbeat *emission* is the owner's job
   (through the possibly chaos-wrapped handle), so injected faults apply
   to heartbeats exactly as to protocol traffic. *)

module Peers = struct
  type t = {
    cfg : config;
    lock : Mutex.t;
    events : event Queue.t;
    last_heard : (int, float) Hashtbl.t;
    suspected : (int, bool) Hashtbl.t;
    started : float;
    mutable last_check : float;
    mutable silences : int;  (* Peer_down transitions ever signalled *)
  }

  let create cfg =
    let now = Unix.gettimeofday () in
    {
      cfg;
      lock = Mutex.create ();
      events = Queue.create ();
      last_heard = Hashtbl.create 16;
      suspected = Hashtbl.create 16;
      started = now;
      last_check = now;
      silences = 0;
    }

  let silences t =
    Mutex.lock t.lock;
    let v = t.silences in
    Mutex.unlock t.lock;
    v

  let push t ev =
    Mutex.lock t.lock;
    Queue.push ev t.events;
    Mutex.unlock t.lock

  (* A frame arrived from [src]: refresh its liveness, and retract any
     standing suspicion. *)
  let heard t src =
    if src >= 0 then begin
      Mutex.lock t.lock;
      Hashtbl.replace t.last_heard src (Unix.gettimeofday ());
      let was_suspected =
        match Hashtbl.find_opt t.suspected src with Some b -> b | None -> false
      in
      if was_suspected then begin
        Hashtbl.replace t.suspected src false;
        Queue.push (Peer_up src) t.events
      end;
      Mutex.unlock t.lock
    end

  let check_silence_locked t =
    let now = Unix.gettimeofday () in
    if t.cfg.hb_period > 0.0 && now -. t.last_check >= t.cfg.hb_period then begin
      t.last_check <- now;
      List.iter
        (fun id ->
          let last =
            match Hashtbl.find_opt t.last_heard id with
            | Some ts -> ts
            | None -> t.started (* grace period from transport start *)
          in
          let suspected =
            match Hashtbl.find_opt t.suspected id with
            | Some b -> b
            | None -> false
          in
          if (not suspected) && now -. last > t.cfg.hb_timeout then begin
            Hashtbl.replace t.suspected id true;
            t.silences <- t.silences + 1;
            Queue.push (Peer_down id) t.events
          end)
        t.cfg.watch
    end

  let poll t =
    Mutex.lock t.lock;
    check_silence_locked t;
    let ev =
      if Queue.is_empty t.events then None else Some (Queue.pop t.events)
    in
    Mutex.unlock t.lock;
    ev
end

(* Learn the sending site from any frame carrying a source field; [-1]
   when the frame is anonymous. Shared by every reader. *)
let frame_src (frame : Wire.frame) =
  match frame with
  | Wire.Hello { site; _ }
  | Wire.Heartbeat { site; _ }
  | Wire.Trace_batch { site; _ }
  | Wire.Metrics { site; _ }
  | Wire.Metrics_v2 { site; _ } ->
    site
  | Wire.Proto { src; _ } -> src
  | Wire.Sproto { src; _ } -> src
  | Wire.Strace { site; _ } -> site
  | Wire.Workload _ | Wire.Shutdown -> -1
  (* session control frames are anonymous: the client side of the service
     is not a site, and nodes answer on the link the frame arrived on *)
  | Wire.Open_session _ | Wire.Acquire _ | Wire.Release_lock _
  | Wire.Renew _ | Wire.Grant _ | Wire.Deny _ | Wire.Expire _ ->
    -1
