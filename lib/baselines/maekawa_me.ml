(** Maekawa's quorum-based mutual exclusion (1985): the algorithm the paper
    improves. Identical quorum machinery, but the permission handoff goes
    {e through} the arbiter — exit sends [release] to each arbiter, which
    then sends [reply] to the next site — so the synchronization delay is
    2T. Message complexity 3(K−1) light / ~5(K−1) heavy, like the
    delay-optimal algorithm. Deadlock resolution uses the classic
    inquire / fail / yield triad with Lamport-timestamp priorities. *)

module Ts = Dmx_sim.Timestamp
module Proto = Dmx_sim.Protocol
module Ts_queue = Dmx_core.Ts_queue

type config = { req_sets : int list array }

type message = Request of Ts.t | Reply | Release | Inquire | Fail | Yield

type state = {
  self : int;
  quorum : int list;
  clock : Ts.Clock.t;
  (* requester role *)
  mutable req : Ts.t option;
  replied : bool array;
  mutable failed : bool;
  mutable in_cs : bool;
  mutable pending_inquires : int list;
  (* arbiter role *)
  mutable lock : Ts.t;
  queue : Ts_queue.t;
  mutable inquired : bool;
  fail_noted : bool array;  (* fail already sent for this site's request *)
}

let name = "maekawa"

let describe (c : config) =
  let sizes = Array.map List.length c.req_sets in
  let n = Array.length sizes in
  let mean =
    if n = 0 then 0.0
    else float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int n
  in
  Printf.sprintf "K=%.1f" mean

let message_kind = function
  | Request _ -> "request"
  | Reply -> "reply"
  | Release -> "release"
  | Inquire -> "inquire"
  | Fail -> "fail"
  | Yield -> "yield"

let pp_message ppf m =
  match m with
  | Request ts -> Format.fprintf ppf "request%a" Ts.pp ts
  | _ -> Format.pp_print_string ppf (message_kind m)

let init (ctx : message Proto.ctx) (c : config) =
  if Array.length c.req_sets <> ctx.n then
    invalid_arg "Maekawa_me.init: req_sets size mismatch";
  {
    self = ctx.self;
    quorum = c.req_sets.(ctx.self);
    clock = Ts.Clock.create ();
    req = None;
    replied = Array.make ctx.n false;
    failed = false;
    in_cs = false;
    pending_inquires = [];
    lock = Ts.infinity;
    queue = Ts_queue.create ();
    inquired = false;
    fail_noted = Array.make ctx.n false;
  }

(* ---- requester ---- *)

let all_replied st = List.for_all (fun k -> st.replied.(k)) st.quorum

let check_enter (ctx : message Proto.ctx) st =
  if st.req <> None && (not st.in_cs) && all_replied st then begin
    st.in_cs <- true;
    st.failed <- false;
    st.pending_inquires <- [];
    ctx.enter_cs ()
  end

let answer_inquire (ctx : message Proto.ctx) st arbiter =
  if st.req <> None && (not st.in_cs) && not (all_replied st) then begin
    if st.replied.(arbiter) && st.failed then begin
      st.replied.(arbiter) <- false;
      ctx.trace_event (Dmx_sim.Trace.Cede { arbiter });
      ctx.send ~dst:arbiter Yield
    end
    else if not (List.mem arbiter st.pending_inquires) then
      st.pending_inquires <- arbiter :: st.pending_inquires
  end

let on_fail (ctx : message Proto.ctx) st =
  if st.req <> None && (not st.in_cs) && not (all_replied st) then begin
    st.failed <- true;
    let pending = st.pending_inquires in
    st.pending_inquires <- [];
    List.iter (answer_inquire ctx st) pending
  end

let request_cs (ctx : message Proto.ctx) st =
  assert (st.req = None && not st.in_cs);
  let ts = Ts.Clock.next st.clock ~site:st.self in
  st.req <- Some ts;
  st.failed <- false;
  st.pending_inquires <- [];
  Array.fill st.replied 0 (Array.length st.replied) false;
  ctx.trace_event (Dmx_sim.Trace.Adopt_quorum st.quorum);
  List.iter (fun j -> ctx.send ~dst:j (Request ts)) st.quorum

let release_cs (ctx : message Proto.ctx) st =
  assert st.in_cs;
  st.in_cs <- false;
  st.req <- None;
  List.iter
    (fun j ->
      ctx.trace_event (Dmx_sim.Trace.Cede { arbiter = j });
      ctx.send ~dst:j Release)
    st.quorum;
  Array.fill st.replied 0 (Array.length st.replied) false;
  st.failed <- false;
  st.pending_inquires <- []

(* ---- arbiter ---- *)

let note_fail (ctx : message Proto.ctx) st (entry : Ts.t) =
  if not st.fail_noted.(entry.Ts.site) then begin
    st.fail_noted.(entry.Ts.site) <- true;
    ctx.send ~dst:entry.Ts.site Fail
  end

let send_inquire (ctx : message Proto.ctx) st =
  if not st.inquired then begin
    st.inquired <- true;
    ctx.send ~dst:st.lock.Ts.site Inquire
  end

(* After any lock reassignment: a head that outranks the new holder is the
   reason to inquire it; a head ranking behind must have been failed (or
   it would never yield elsewhere — Sanders' correction of the original
   algorithm). *)
let enforce_head_rule (ctx : message Proto.ctx) st =
  match Ts_queue.head st.queue with
  | Some h when Ts.(h < st.lock) -> send_inquire ctx st
  | Some h -> note_fail ctx st h
  | None -> ()

let grant_next (ctx : message Proto.ctx) st =
  match Ts_queue.pop st.queue with
  | Some best ->
    st.lock <- best;
    st.inquired <- false;
    st.fail_noted.(best.Ts.site) <- false;
    ctx.trace_event (Dmx_sim.Trace.Grant { to_ = best.Ts.site });
    ctx.send ~dst:best.Ts.site Reply;
    enforce_head_rule ctx st
  | None ->
    st.lock <- Ts.infinity;
    st.inquired <- false

let on_request (ctx : message Proto.ctx) st ~src ts =
  Ts.Clock.observe st.clock ts;
  if Ts.is_infinity st.lock then begin
    st.lock <- ts;
    st.inquired <- false;
    st.fail_noted.(src) <- false;
    ctx.trace_event (Dmx_sim.Trace.Grant { to_ = src });
    ctx.send ~dst:src Reply
  end
  else begin
    let old_head = Ts_queue.head st.queue in
    Ts_queue.insert st.queue ts;
    st.fail_noted.(src) <- false;
    let is_best =
      match Ts_queue.head st.queue with
      | Some h -> Ts.equal h ts
      | None -> false
    in
    if is_best then begin
      (match old_head with
      | Some prev when prev.Ts.site <> src -> note_fail ctx st prev
      | Some _ | None -> ());
      if Ts.(ts < st.lock) then send_inquire ctx st else note_fail ctx st ts
    end
    else note_fail ctx st ts
  end

let on_yield (ctx : message Proto.ctx) st ~src =
  if st.lock.Ts.site = src then begin
    Ts_queue.insert st.queue st.lock;
    grant_next ctx st
  end

let on_release (ctx : message Proto.ctx) st ~src =
  if st.lock.Ts.site = src then grant_next ctx st

let on_message (ctx : message Proto.ctx) st ~src = function
  | Request ts -> on_request ctx st ~src ts
  | Reply ->
    if st.req <> None && not st.replied.(src) then
      ctx.trace_event (Dmx_sim.Trace.Acquire { arbiter = src });
    st.replied.(src) <- true;
    check_enter ctx st
  | Release -> on_release ctx st ~src
  | Inquire -> answer_inquire ctx st src
  | Fail -> on_fail ctx st
  | Yield -> on_yield ctx st ~src

let on_timer _ctx _st _tag = ()
let on_failure _ctx _st _site = ()
let on_recovery _ctx _st _site = ()

let copy_state st =
  {
    st with
    replied = Array.copy st.replied;
    queue = Ts_queue.copy st.queue;
    fail_noted = Array.copy st.fail_noted;
    clock = Ts.Clock.copy st.clock;
  }
