(** Singhal's dynamic information-structure algorithm (1992): an adaptive
    Ricart–Agrawala in which the request set shrinks as sites learn about
    each other, forming the classic "staircase" pattern. Averages N−1
    messages per CS at light load and 2(N−1) at heavy load, with
    synchronization delay T (Table 1's dynamic row).

    The safety invariant is pairwise asymmetry: for every pair of sites, at
    least one holds the other in its request set [r_set]. Initially site i
    asks exactly the lower-numbered sites. Whenever a site {e sends} a
    reply it adds the recipient to its request set (it has surrendered
    precedence and must consult that site next time); whenever it
    {e receives} a reply it drops the sender (the sender has committed to
    asking it in the future). A requester that replies to a
    higher-priority request it had already collected a reply from
    re-issues its own request to that site. *)

module Ts = Dmx_sim.Timestamp
module Proto = Dmx_sim.Protocol

type config = unit

type message = Request of Ts.t | Reply

type state = {
  self : int;
  clock : Ts.Clock.t;
  mutable r_set : int list;  (* sites to consult; sorted, never self *)
  mutable pending : int list;  (* replies still awaited this round *)
  mutable deferred : int list;  (* requests to answer at exit *)
  mutable req : Ts.t option;
  mutable in_cs : bool;
}

let name = "singhal-dynamic"
let describe () = "staircase"
let message_kind = function Request _ -> "request" | Reply -> "reply"

let pp_message ppf = function
  | Request ts -> Format.fprintf ppf "request%a" Ts.pp ts
  | Reply -> Format.pp_print_string ppf "reply"

let init (ctx : message Proto.ctx) () =
  {
    self = ctx.self;
    clock = Ts.Clock.create ();
    r_set = List.init ctx.self Fun.id;  (* S_i initially asks S_0..S_{i-1} *)
    pending = [];
    deferred = [];
    req = None;
    in_cs = false;
  }

let add_set l x = if List.mem x l then l else List.sort Int.compare (x :: l)
let remove_set l x = List.filter (fun y -> y <> x) l

let check_enter (ctx : message Proto.ctx) st =
  if st.req <> None && (not st.in_cs) && st.pending = [] then begin
    st.in_cs <- true;
    ctx.enter_cs ()
  end

let request_cs (ctx : message Proto.ctx) st =
  assert (st.req = None && not st.in_cs);
  let ts = Ts.Clock.next st.clock ~site:st.self in
  st.req <- Some ts;
  st.pending <- st.r_set;
  List.iter (fun j -> ctx.send ~dst:j (Request ts)) st.r_set;
  check_enter ctx st

let release_cs (ctx : message Proto.ctx) st =
  assert st.in_cs;
  st.in_cs <- false;
  st.req <- None;
  (* Deferred requesters get their reply now and join the request set:
     having surrendered precedence to us once, they must ask us again. *)
  List.iter
    (fun j ->
      st.r_set <- add_set st.r_set j;
      ctx.send ~dst:j Reply)
    st.deferred;
  st.deferred <- []

let on_message (ctx : message Proto.ctx) st ~src = function
  | Request ts -> begin
    Ts.Clock.observe st.clock ts;
    if st.in_cs then st.deferred <- add_set st.deferred src
    else begin
      match st.req with
      | Some own when Ts.compare own ts < 0 ->
        (* Our request outranks theirs: they wait for our exit. *)
        st.deferred <- add_set st.deferred src
      | Some own ->
        (* Theirs outranks ours: reply now; they owe us a consult next
           time. If we had already pocketed their reply this round, that
           permission is void — re-request it. *)
        ctx.send ~dst:src Reply;
        if not (List.mem src st.r_set) then begin
          st.r_set <- add_set st.r_set src;
          st.pending <- add_set st.pending src;
          ctx.send ~dst:src (Request own)
        end
      | None ->
        ctx.send ~dst:src Reply;
        st.r_set <- add_set st.r_set src
    end
  end
  | Reply ->
    st.pending <- remove_set st.pending src;
    st.r_set <- remove_set st.r_set src;
    check_enter ctx st

let on_timer _ctx _st _tag = ()
let on_failure _ctx _st _site = ()
let on_recovery _ctx _st _site = ()

module Internal = struct
  let r_set st = st.r_set
  let pending st = st.pending
end
