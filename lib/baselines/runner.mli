(** Heterogeneous protocol runners.

    [Engine.Make] produces one module per protocol; experiments, the CLI
    and the examples want to iterate over {e all} algorithms uniformly.
    A [t] packages "run this protocol under that engine config" behind a
    first-class function, with the protocol's static parameters (quorum
    construction, token topology) already applied. *)

type t = {
  name : string;  (** e.g. "delay-optimal" *)
  variant : string;  (** e.g. the quorum kind, "" when not applicable *)
  run : Dmx_sim.Engine.config -> Dmx_sim.Engine.report;
      (** honors {!always_check}: oracle-verifies the run when enabled *)
  run_traced :
    ?trace_sink:Dmx_sim.Trace.t ->
    Dmx_sim.Engine.config ->
    Dmx_sim.Engine.report;
      (** raw run, recording into [trace_sink] when given *)
}

val always_check : bool Atomic.t
(** When set, every {!field-run} records a full trace and pipes it through
    {!Dmx_sim.Oracle.check_trace}; violations are printed to stderr and
    counted in {!check_failures}. Default [false] (zero overhead).
    Atomic because checked runs may execute on several domains under
    {!Dmx_sim.Pool}; set it once before fanning out. *)

val check_failures : int Atomic.t
(** Number of oracle-rejected runs since startup; drivers exit nonzero when
    this is positive at the end. Safe to bump from worker domains. *)

val delay_optimal : ?kind:Dmx_quorum.Builder.kind -> n:int -> unit -> t
(** Default quorum: [Grid]. *)

val ft_delay_optimal :
  ?reliability:Dmx_core.Reliable.config ->
  ?trust_detector:bool ->
  ?kind:Dmx_quorum.Builder.kind ->
  n:int ->
  unit ->
  t
(** Fault-tolerant variant (default quorum: [Tree], the reconstruction-
    friendly coterie). [reliability] enables the retry/ack layer (needed
    under a lossy {!Dmx_sim.Network.fault_plan}); [trust_detector:false]
    switches to suspicion semantics for heartbeat detection. *)

val maekawa : ?kind:Dmx_quorum.Builder.kind -> n:int -> unit -> t
(** Maekawa's √N-quorum algorithm with deadlock resolution (default
    quorum: [Grid]). The remaining baselines take no parameters beyond
    [n]: *)

val lamport : n:int -> t
val ricart_agrawala : n:int -> t
val singhal_dynamic : n:int -> t
val suzuki_kasami : n:int -> t
val singhal_heuristic : n:int -> t
val raymond : ?chain:bool -> n:int -> unit -> t

val all : n:int -> t list
(** One of each algorithm with its default parameters: the Table 1 set. *)

val by_name : string -> (n:int -> t, string) result
(** Look up a runner constructor by [name] ("delay-optimal", "maekawa",
    "lamport", "ricart-agrawala", "singhal-dynamic", "suzuki-kasami",
    "singhal-heuristic", "raymond", "ft-delay-optimal"). *)

val names : string list
(** The registry's algorithm names, in {!by_name}'s spelling. *)

val of_algo :
  ?faults:Dmx_sim.Network.fault_plan ->
  ?detector:Dmx_sim.Engine.detector ->
  ?kind:Dmx_quorum.Builder.kind ->
  string ->
  n:int ->
  (t, string) result
(** {!by_name} plus environment-aware wiring: under a lossy [faults] plan
    or a heartbeat [detector], "ft-delay-optimal" gets its retry/ack
    reliability layer and suspicion (rather than oracle-trusting) detector
    semantics. Also accepts "raymond-chain" and applies [kind] to the
    quorum-based algorithms. *)

val of_schedule :
  ?extra:(string * (n:int -> t)) list ->
  Dmx_sim.Schedule.t ->
  (t, string) result
(** Resolve a schedule's [algo]/[quorum]/[reliability]/[detector] fields to
    a runner. [extra] prepends test-only runners (e.g. an intentionally
    broken protocol for fuzz-harness self-tests) consulted before the
    standard registry. *)

val run_schedule :
  ?extra:(string * (n:int -> t)) list ->
  Dmx_sim.Schedule.t ->
  (Dmx_sim.Engine.report * Dmx_sim.Trace.t, string) result
(** Resolve and execute a schedule with full tracing; returns the report
    and the recorded trace for {!Dmx_sim.Oracle} inspection. *)
