(** Heterogeneous protocol runners.

    [Engine.Make] produces one module per protocol; experiments, the CLI
    and the examples want to iterate over {e all} algorithms uniformly.
    A [t] packages "run this protocol under that engine config" behind a
    first-class function, with the protocol's static parameters (quorum
    construction, token topology) already applied. *)

type t = {
  name : string;  (** e.g. "delay-optimal" *)
  variant : string;  (** e.g. the quorum kind, "" when not applicable *)
  run : Dmx_sim.Engine.config -> Dmx_sim.Engine.report;
}

val delay_optimal : ?kind:Dmx_quorum.Builder.kind -> n:int -> unit -> t
(** Default quorum: [Grid]. *)

val ft_delay_optimal :
  ?reliability:Dmx_core.Reliable.config ->
  ?trust_detector:bool ->
  ?kind:Dmx_quorum.Builder.kind ->
  n:int ->
  unit ->
  t
(** Fault-tolerant variant (default quorum: [Tree], the reconstruction-
    friendly coterie). [reliability] enables the retry/ack layer (needed
    under a lossy {!Dmx_sim.Network.fault_plan}); [trust_detector:false]
    switches to suspicion semantics for heartbeat detection. *)

val maekawa : ?kind:Dmx_quorum.Builder.kind -> n:int -> unit -> t
val lamport : n:int -> t
val ricart_agrawala : n:int -> t
val singhal_dynamic : n:int -> t
val suzuki_kasami : n:int -> t
val singhal_heuristic : n:int -> t
val raymond : ?chain:bool -> n:int -> unit -> t

val all : n:int -> t list
(** One of each algorithm with its default parameters: the Table 1 set. *)

val by_name : string -> (n:int -> t, string) result
(** Look up a runner constructor by [name] ("delay-optimal", "maekawa",
    "lamport", "ricart-agrawala", "singhal-dynamic", "suzuki-kasami",
    "singhal-heuristic", "raymond", "ft-delay-optimal"). *)

val names : string list
