(** Ricart–Agrawala (1981): Lamport's algorithm with releases merged into
    deferred replies. 2(N−1) messages per CS execution, synchronization
    delay T. Table 1's optimized broadcast baseline.

    A site replies to an incoming request immediately unless it is in the
    CS or requesting with higher priority — then the reply is deferred
    until its own exit, which is exactly what serializes the executions. *)

module Ts = Dmx_sim.Timestamp
module Proto = Dmx_sim.Protocol

type config = unit

type message = Request of Ts.t | Reply

type state = {
  self : int;
  n : int;
  clock : Ts.Clock.t;
  mutable req : Ts.t option;
  mutable in_cs : bool;
  replied : bool array;
  mutable deferred : int list;
}

let name = "ricart-agrawala"
let describe () = "broadcast"
let message_kind = function Request _ -> "request" | Reply -> "reply"

let pp_message ppf = function
  | Request ts -> Format.fprintf ppf "request%a" Ts.pp ts
  | Reply -> Format.pp_print_string ppf "reply"

let init (ctx : message Proto.ctx) () =
  {
    self = ctx.self;
    n = ctx.n;
    clock = Ts.Clock.create ();
    req = None;
    in_cs = false;
    replied = Array.make ctx.n false;
    deferred = [];
  }

let others st = List.filter (fun j -> j <> st.self) (List.init st.n Fun.id)

let check_enter (ctx : message Proto.ctx) st =
  if
    st.req <> None && (not st.in_cs)
    && List.for_all (fun j -> st.replied.(j)) (others st)
  then begin
    st.in_cs <- true;
    ctx.enter_cs ()
  end

let request_cs (ctx : message Proto.ctx) st =
  assert (st.req = None && not st.in_cs);
  let ts = Ts.Clock.next st.clock ~site:st.self in
  st.req <- Some ts;
  Array.fill st.replied 0 st.n false;
  List.iter (fun j -> ctx.send ~dst:j (Request ts)) (others st);
  check_enter ctx st (* n = 1 enters immediately *)

let release_cs (ctx : message Proto.ctx) st =
  assert st.in_cs;
  st.in_cs <- false;
  st.req <- None;
  List.iter (fun j -> ctx.send ~dst:j Reply) st.deferred;
  st.deferred <- []

let on_message (ctx : message Proto.ctx) st ~src = function
  | Request ts ->
    Ts.Clock.observe st.clock ts;
    let defer =
      st.in_cs
      ||
      match st.req with
      | Some own -> Ts.compare own ts < 0 (* our request outranks theirs *)
      | None -> false
    in
    if defer then st.deferred <- src :: st.deferred
    else ctx.send ~dst:src Reply
  | Reply ->
    st.replied.(src) <- true;
    check_enter ctx st

let on_timer _ctx _st _tag = ()
let on_failure _ctx _st _site = ()
let on_recovery _ctx _st _site = ()

let copy_state st =
  { st with replied = Array.copy st.replied; clock = Ts.Clock.copy st.clock }
