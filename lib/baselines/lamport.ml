(** Lamport's mutual exclusion algorithm (1978): the timestamp-ordered
    request queue replicated at every site. 3(N−1) messages per CS
    execution ((N−1) each of request / reply / release), synchronization
    delay T. The baseline for Table 1's "delay T but O(N) messages"
    corner.

    A site enters when its own request heads its local queue and it has
    heard a later-timestamped message from every other site (FIFO channels
    make that a promise that no earlier request is in flight). *)

module Ts = Dmx_sim.Timestamp
module Proto = Dmx_sim.Protocol

(* Reuse the core library's timestamp queue for the replicated queue. *)
module Ts_queue = Dmx_core.Ts_queue

type config = unit

type message =
  | Request of Ts.t
  | Reply of Ts.t  (** timestamp = sender's clock at send time *)
  | Release of Ts.t

type state = {
  self : int;
  n : int;
  clock : Ts.Clock.t;
  queue : Ts_queue.t;  (* replicated request queue, priority order *)
  last_from : Ts.t array;  (* newest timestamp heard from each site *)
  mutable req : Ts.t option;
  mutable in_cs : bool;
}

let name = "lamport"
let describe () = "broadcast"

let message_kind = function
  | Request _ -> "request"
  | Reply _ -> "reply"
  | Release _ -> "release"

let pp_message ppf = function
  | Request ts -> Format.fprintf ppf "request%a" Ts.pp ts
  | Reply ts -> Format.fprintf ppf "reply%a" Ts.pp ts
  | Release ts -> Format.fprintf ppf "release%a" Ts.pp ts

let init (ctx : message Proto.ctx) () =
  {
    self = ctx.self;
    n = ctx.n;
    clock = Ts.Clock.create ();
    queue = Ts_queue.create ();
    last_from = Array.make ctx.n { Ts.sn = 0; site = 0 };
    req = None;
    in_cs = false;
  }

let others st = List.filter (fun j -> j <> st.self) (List.init st.n Fun.id)

let check_enter (ctx : message Proto.ctx) st =
  match st.req with
  | Some own when not st.in_cs ->
    let at_head =
      match Ts_queue.head st.queue with
      | Some h -> Ts.equal h own
      | None -> false
    in
    let heard_later j = Ts.compare st.last_from.(j) own > 0 in
    if at_head && List.for_all heard_later (others st) then begin
      st.in_cs <- true;
      ctx.enter_cs ()
    end
  | _ -> ()

let note_heard st ~src ts =
  Ts.Clock.observe st.clock ts;
  if Ts.compare ts st.last_from.(src) > 0 then st.last_from.(src) <- ts

let request_cs (ctx : message Proto.ctx) st =
  assert (st.req = None && not st.in_cs);
  let ts = Ts.Clock.next st.clock ~site:st.self in
  st.req <- Some ts;
  Ts_queue.insert st.queue ts;
  List.iter (fun j -> ctx.send ~dst:j (Request ts)) (others st);
  check_enter ctx st

let release_cs (ctx : message Proto.ctx) st =
  assert st.in_cs;
  st.in_cs <- false;
  (match st.req with
  | Some own -> ignore (Ts_queue.remove_site st.queue own.Ts.site)
  | None -> ());
  st.req <- None;
  let ts = Ts.Clock.next st.clock ~site:st.self in
  List.iter (fun j -> ctx.send ~dst:j (Release ts)) (others st)

let on_message (ctx : message Proto.ctx) st ~src = function
  | Request ts ->
    note_heard st ~src ts;
    Ts_queue.insert st.queue ts;
    let reply_ts = Ts.Clock.next st.clock ~site:st.self in
    ctx.send ~dst:src (Reply reply_ts);
    check_enter ctx st
  | Reply ts ->
    note_heard st ~src ts;
    check_enter ctx st
  | Release ts ->
    note_heard st ~src ts;
    ignore (Ts_queue.remove_site st.queue src);
    check_enter ctx st

let on_timer _ctx _st _tag = ()
let on_failure _ctx _st _site = ()
let on_recovery _ctx _st _site = ()
