module E = Dmx_sim.Engine
module B = Dmx_quorum.Builder

type t = {
  name : string;
  variant : string;
  run : Dmx_sim.Engine.config -> Dmx_sim.Engine.report;
}

let delay_optimal ?(kind = B.Grid) ~n () =
  let req_sets = B.req_sets kind ~n in
  let module M = E.Make (Dmx_core.Delay_optimal) in
  {
    name = "delay-optimal";
    variant = B.kind_name kind;
    run = (fun cfg -> M.run cfg (Dmx_core.Delay_optimal.config req_sets));
  }

let ft_delay_optimal ?reliability ?trust_detector ?(kind = B.Tree) ~n () =
  let config =
    Dmx_core.Ft_delay_optimal.config_of_kind ?reliability ?trust_detector kind
      ~n ~broadcast:false
  in
  let module M = E.Make (Dmx_core.Ft_delay_optimal) in
  {
    name = "ft-delay-optimal";
    variant = B.kind_name kind;
    run = (fun cfg -> M.run cfg config);
  }

let maekawa ?(kind = B.Grid) ~n () =
  let req_sets = B.req_sets kind ~n in
  let module M = E.Make (Maekawa_me) in
  {
    name = "maekawa";
    variant = B.kind_name kind;
    run = (fun cfg -> M.run cfg { Maekawa_me.req_sets });
  }

let lamport ~n =
  ignore n;
  let module M = E.Make (Lamport) in
  { name = "lamport"; variant = ""; run = (fun cfg -> M.run cfg ()) }

let ricart_agrawala ~n =
  ignore n;
  let module M = E.Make (Ricart_agrawala) in
  { name = "ricart-agrawala"; variant = ""; run = (fun cfg -> M.run cfg ()) }

let singhal_dynamic ~n =
  ignore n;
  let module M = E.Make (Singhal_dynamic) in
  { name = "singhal-dynamic"; variant = ""; run = (fun cfg -> M.run cfg ()) }

let suzuki_kasami ~n =
  ignore n;
  let module M = E.Make (Suzuki_kasami) in
  { name = "suzuki-kasami"; variant = ""; run = (fun cfg -> M.run cfg ()) }

let singhal_heuristic ~n =
  ignore n;
  let module M = E.Make (Singhal_heuristic) in
  { name = "singhal-heuristic"; variant = ""; run = (fun cfg -> M.run cfg ()) }

let raymond ?(chain = false) ~n () =
  let topology = if chain then Raymond.chain ~n else Raymond.binary_tree ~n in
  let module M = E.Make (Raymond) in
  {
    name = "raymond";
    variant = (if chain then "chain" else "binary-tree");
    run = (fun cfg -> M.run cfg topology);
  }

let all ~n =
  [
    lamport ~n;
    ricart_agrawala ~n;
    singhal_dynamic ~n;
    maekawa ~n ();
    delay_optimal ~n ();
    suzuki_kasami ~n;
    singhal_heuristic ~n;
    raymond ~n ();
  ]

let registry =
  [
    ("delay-optimal", fun ~n -> delay_optimal ~n ());
    ("ft-delay-optimal", fun ~n -> ft_delay_optimal ~n ());
    ("maekawa", fun ~n -> maekawa ~n ());
    ("lamport", lamport);
    ("ricart-agrawala", ricart_agrawala);
    ("singhal-dynamic", singhal_dynamic);
    ("suzuki-kasami", suzuki_kasami);
    ("singhal-heuristic", singhal_heuristic);
    ("raymond", fun ~n -> raymond ~n ());
  ]

let names = List.map fst registry

let by_name name =
  match List.assoc_opt name registry with
  | Some f -> Ok f
  | None ->
    Error
      (Printf.sprintf "unknown algorithm %S (expected one of: %s)" name
         (String.concat ", " names))
