module E = Dmx_sim.Engine
module B = Dmx_quorum.Builder
module Trace = Dmx_sim.Trace
module Oracle = Dmx_sim.Oracle
module Schedule = Dmx_sim.Schedule

type t = {
  name : string;
  variant : string;
  run : Dmx_sim.Engine.config -> Dmx_sim.Engine.report;
  run_traced :
    ?trace_sink:Trace.t -> Dmx_sim.Engine.config -> Dmx_sim.Engine.report;
}

(* Atomics, not refs: checked runs execute concurrently under
   [Dmx_sim.Pool] and every worker domain bumps [check_failures]. *)
let always_check = Atomic.make false
let check_failures = Atomic.make 0

(* A checked run records the full trace and pipes it through the Oracle;
   violations go to stderr and bump [check_failures] so drivers (bench,
   CLI) can exit nonzero at the end. The large capacity keeps the biggest
   bench scenarios un-truncated; if one still overflows, the oracle
   refuses to certify and we say so rather than silently passing. The FIFO
   and custody checks are relaxed exactly where their assumptions break
   (see Oracle.config): crashed-and-recovered sites reuse reliability
   sequence numbers and keep volatile possessions, and duplicated copies
   take independent delays. *)
let checked ~name run_traced (cfg : E.config) =
  if not (Atomic.get always_check) then run_traced ?trace_sink:None cfg
  else begin
    let sink = Trace.create ~enabled:true ~capacity:4_000_000 () in
    let r = run_traced ?trace_sink:(Some sink) cfg in
    let crashy = cfg.E.crashes <> [] in
    let dupy = cfg.E.faults.Dmx_sim.Network.duplication > 0.0 in
    let ocfg =
      {
        (Oracle.default ~n:cfg.E.n) with
        Oracle.fifo = not (crashy || dupy);
        custody = not crashy;
      }
    in
    let v = Oracle.check_trace ocfg sink in
    (* Render first, then emit with a single write: concurrent checked
       runs must not interleave partial lines on stderr. *)
    let complain () =
      prerr_string (Format.asprintf "oracle[%s]: %a@." name Oracle.pp_verdict v)
    in
    if v.Oracle.truncated then complain ()
    else if v.Oracle.violations <> [] then begin
      ignore (Atomic.fetch_and_add check_failures 1);
      complain ()
    end;
    r
  end

let make ~name ~variant run_traced =
  { name; variant; run_traced; run = checked ~name run_traced }

let delay_optimal ?(kind = B.Grid) ~n () =
  let req_sets = B.req_sets kind ~n in
  let module M = E.Make (Dmx_core.Delay_optimal) in
  make ~name:"delay-optimal" ~variant:(B.kind_name kind)
    (fun ?trace_sink cfg ->
      M.run ?trace_sink cfg (Dmx_core.Delay_optimal.config req_sets))

let ft_delay_optimal ?reliability ?trust_detector ?(kind = B.Tree) ~n () =
  let config =
    Dmx_core.Ft_delay_optimal.config_of_kind ?reliability ?trust_detector kind
      ~n ~broadcast:false
  in
  let module M = E.Make (Dmx_core.Ft_delay_optimal) in
  make ~name:"ft-delay-optimal" ~variant:(B.kind_name kind)
    (fun ?trace_sink cfg -> M.run ?trace_sink cfg config)

let maekawa ?(kind = B.Grid) ~n () =
  let req_sets = B.req_sets kind ~n in
  let module M = E.Make (Maekawa_me) in
  make ~name:"maekawa" ~variant:(B.kind_name kind) (fun ?trace_sink cfg ->
      M.run ?trace_sink cfg { Maekawa_me.req_sets })

let lamport ~n =
  ignore n;
  let module M = E.Make (Lamport) in
  make ~name:"lamport" ~variant:"" (fun ?trace_sink cfg ->
      M.run ?trace_sink cfg ())

let ricart_agrawala ~n =
  ignore n;
  let module M = E.Make (Ricart_agrawala) in
  make ~name:"ricart-agrawala" ~variant:"" (fun ?trace_sink cfg ->
      M.run ?trace_sink cfg ())

let singhal_dynamic ~n =
  ignore n;
  let module M = E.Make (Singhal_dynamic) in
  make ~name:"singhal-dynamic" ~variant:"" (fun ?trace_sink cfg ->
      M.run ?trace_sink cfg ())

let suzuki_kasami ~n =
  ignore n;
  let module M = E.Make (Suzuki_kasami) in
  make ~name:"suzuki-kasami" ~variant:"" (fun ?trace_sink cfg ->
      M.run ?trace_sink cfg ())

let singhal_heuristic ~n =
  ignore n;
  let module M = E.Make (Singhal_heuristic) in
  make ~name:"singhal-heuristic" ~variant:"" (fun ?trace_sink cfg ->
      M.run ?trace_sink cfg ())

let raymond ?(chain = false) ~n () =
  let topology = if chain then Raymond.chain ~n else Raymond.binary_tree ~n in
  let module M = E.Make (Raymond) in
  make ~name:"raymond"
    ~variant:(if chain then "chain" else "binary-tree")
    (fun ?trace_sink cfg -> M.run ?trace_sink cfg topology)

let all ~n =
  [
    lamport ~n;
    ricart_agrawala ~n;
    singhal_dynamic ~n;
    maekawa ~n ();
    delay_optimal ~n ();
    suzuki_kasami ~n;
    singhal_heuristic ~n;
    raymond ~n ();
  ]

let registry =
  [
    ("delay-optimal", fun ~n -> delay_optimal ~n ());
    ("ft-delay-optimal", fun ~n -> ft_delay_optimal ~n ());
    ("maekawa", fun ~n -> maekawa ~n ());
    ("lamport", lamport);
    ("ricart-agrawala", ricart_agrawala);
    ("singhal-dynamic", singhal_dynamic);
    ("suzuki-kasami", suzuki_kasami);
    ("singhal-heuristic", singhal_heuristic);
    ("raymond", fun ~n -> raymond ~n ());
  ]

let names = List.map fst registry

let by_name name =
  match List.assoc_opt name registry with
  | Some f -> Ok f
  | None ->
    Error
      (Printf.sprintf "unknown algorithm %S (expected one of: %s)" name
         (String.concat ", " names))

(* Under an unreliable network or detector, the FT variant needs its
   retry/ack layer and must treat detector output as suspicion, not truth;
   the plain scenarios keep the paper-faithful bare channels. *)
let of_algo ?(faults = Dmx_sim.Network.no_faults) ?(detector = E.Oracle 3.0)
    ?kind algo ~n =
  let lossy =
    faults.Dmx_sim.Network.loss > 0.0
    || faults.Dmx_sim.Network.duplication > 0.0
    || faults.Dmx_sim.Network.partitions <> []
  in
  let trusted =
    match detector with E.Oracle _ -> true | E.Heartbeat _ -> false
  in
  match algo with
  | "delay-optimal" -> Ok (delay_optimal ?kind ~n ())
  | "ft-delay-optimal" ->
    let reliability =
      if lossy || not trusted then Some Dmx_core.Reliable.default else None
    in
    Ok (ft_delay_optimal ?reliability ~trust_detector:trusted ?kind ~n ())
  | "maekawa" -> Ok (maekawa ?kind ~n ())
  | "raymond-chain" -> Ok (raymond ~chain:true ~n ())
  | other -> Result.map (fun f -> f ~n) (by_name other)

let of_schedule ?(extra = []) (s : Schedule.t) =
  match List.assoc_opt s.Schedule.algo extra with
  | Some f -> Ok (f ~n:s.Schedule.n)
  | None -> (
    let kind =
      if s.Schedule.quorum = "" then Ok None
      else Result.map Option.some (B.parse_kind s.Schedule.quorum)
    in
    match kind with
    | Error e -> Error e
    | Ok kind -> (
      match s.Schedule.algo with
      | "ft-delay-optimal" ->
        (* the schedule states the reliability intent explicitly, so a
           shrunk fault-free reproducer still runs the layer it ran with *)
        let reliability =
          if s.Schedule.reliability then Some Dmx_core.Reliable.default
          else None
        in
        let trusted =
          match s.Schedule.detector with
          | E.Oracle _ -> true
          | E.Heartbeat _ -> false
        in
        Ok
          (ft_delay_optimal ?reliability ~trust_detector:trusted ?kind
             ~n:s.Schedule.n ())
      | algo ->
        of_algo ~faults:s.Schedule.faults ~detector:s.Schedule.detector ?kind
          algo ~n:s.Schedule.n))

let run_schedule ?extra (s : Schedule.t) =
  match of_schedule ?extra s with
  | Error e -> Error e
  | Ok r ->
    let sink = Trace.create ~enabled:true ~capacity:4_000_000 () in
    let report = r.run_traced ?trace_sink:(Some sink) (Schedule.to_engine_config s) in
    Ok (report, sink)
