(** Suzuki–Kasami broadcast token algorithm (1985): the executable
    representative of Table 1's token-based corner (see DESIGN.md,
    substitutions). A single PRIVILEGE token carries the last-served
    request number of every site plus a FIFO queue of waiting sites;
    requests are broadcast sequence numbers. N messages per CS when the
    requester lacks the token (N−1 requests + 1 token), 0 when it holds
    it; synchronization delay T. *)

module Proto = Dmx_sim.Protocol

type config = unit

type token = { last_served : int array; mutable waiting : int list }

type message =
  | Request of int  (** the sender's current request number *)
  | Token of token

type state = {
  self : int;
  n : int;
  highest : int array;  (* RN: highest request number heard per site *)
  mutable token : token option;
  mutable requesting : bool;
  mutable in_cs : bool;
}

let name = "suzuki-kasami"
let describe () = "broadcast-token"
let message_kind = function Request _ -> "request" | Token _ -> "token"

let pp_message ppf = function
  | Request k -> Format.fprintf ppf "request(#%d)" k
  | Token t ->
    Format.fprintf ppf "token(queue=[%s])"
      (String.concat "," (List.map string_of_int t.waiting))

let init (ctx : message Proto.ctx) () =
  {
    self = ctx.self;
    n = ctx.n;
    highest = Array.make ctx.n 0;
    (* site 0 mints the token *)
    token =
      (if ctx.self = 0 then
         Some { last_served = Array.make ctx.n 0; waiting = [] }
       else None);
    requesting = false;
    in_cs = false;
  }

let others st = List.filter (fun j -> j <> st.self) (List.init st.n Fun.id)

let enter (ctx : message Proto.ctx) st =
  st.in_cs <- true;
  ctx.enter_cs ()

let has_fresh_request st tok j = st.highest.(j) = tok.last_served.(j) + 1

(* Pass the token to the head of its queue, topping the queue up with every
   site whose request is newer than its last service. *)
let dispatch_token (ctx : message Proto.ctx) st =
  match st.token with
  | None -> ()
  | Some tok ->
    List.iter
      (fun j ->
        if
          j <> st.self
          && has_fresh_request st tok j
          && not (List.mem j tok.waiting)
        then tok.waiting <- tok.waiting @ [ j ])
      (List.init st.n Fun.id);
    (match tok.waiting with
    | next :: rest ->
      tok.waiting <- rest;
      st.token <- None;
      ctx.send ~dst:next (Token tok)
    | [] -> ())

let request_cs (ctx : message Proto.ctx) st =
  assert ((not st.requesting) && not st.in_cs);
  st.requesting <- true;
  match st.token with
  | Some _ -> enter ctx st
  | None ->
    st.highest.(st.self) <- st.highest.(st.self) + 1;
    List.iter
      (fun j -> ctx.send ~dst:j (Request st.highest.(st.self)))
      (others st)

let release_cs (ctx : message Proto.ctx) st =
  assert st.in_cs;
  st.in_cs <- false;
  st.requesting <- false;
  (match st.token with
  | Some tok -> tok.last_served.(st.self) <- st.highest.(st.self)
  | None -> assert false);
  dispatch_token ctx st

let on_message (ctx : message Proto.ctx) st ~src = function
  | Request k ->
    if k > st.highest.(src) then st.highest.(src) <- k;
    (* An idle token holder serves immediately. *)
    if (not st.in_cs) && not st.requesting then dispatch_token ctx st
  | Token tok ->
    st.token <- Some tok;
    st.highest.(st.self) <- max st.highest.(st.self) tok.last_served.(st.self);
    if st.requesting && not st.in_cs then enter ctx st
    else dispatch_token ctx st

let on_timer _ctx _st _tag = ()
let on_failure _ctx _st _site = ()
let on_recovery _ctx _st _site = ()
