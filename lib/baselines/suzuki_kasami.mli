(** Suzuki–Kasami broadcast token algorithm (1985): N messages per CS when
    the requester lacks the token (N−1 request broadcasts + 1 token), 0
    when it holds it; synchronization delay T. The executable stand-in for
    Table 1's token-based algorithms (see DESIGN.md substitutions). *)

type config = unit
type token = { last_served : int array; mutable waiting : int list }
type message = Request of int | Token of token

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message := message
