(** Maekawa's quorum-based mutual exclusion (1985): the 2T baseline the
    paper improves. Permissions return to the arbiter on release before
    being re-granted, so every handoff costs two message delays. Includes
    the eager fail/inquire discipline (Sanders' correction) that makes the
    inquire/fail/yield deadlock avoidance actually sound. *)

type config = { req_sets : int list array }
type message = Request of Dmx_sim.Timestamp.t | Reply | Release | Inquire | Fail | Yield

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message := message

val copy_state : state -> state
(** Deep copy for the model checker. *)
