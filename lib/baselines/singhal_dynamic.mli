(** Singhal's dynamic information-structure algorithm (1992): adaptive
    Ricart–Agrawala whose request sets shrink as sites learn about each
    other ("staircase" pattern). N−1 messages per CS at light load,
    2(N−1) at heavy load, synchronization delay T.

    Safety rests on pairwise asymmetry: for every pair of sites at least
    one has the other in its request set; replying adds the recipient to
    the replier's set, receiving a reply removes the sender. *)

type config = unit
type message = Request of Dmx_sim.Timestamp.t | Reply

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message := message

(** White-box access for tests of the staircase invariant. *)
module Internal : sig
  val r_set : state -> int list
  val pending : state -> int list
end
