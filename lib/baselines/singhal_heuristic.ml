(** Singhal's heuristically-aided token algorithm (1989) — the actual
    "Singhal's token-based heuristic" row of the paper's Table 1 (0..N
    messages per CS, synchronization delay T).

    Each site tracks a state vector [sv] guessing every site's state
    (Requesting / Executing / Holding the idle token / None) plus the
    highest request number heard per site. A requester sends its request
    only to sites it believes are requesting, executing or holding — the
    heuristic set — rather than broadcasting. The token carries its own
    vector and request numbers; on release, the token's and the holder's
    information are merged (freshness decided by request numbers), the
    token goes to some site the merged view shows requesting, or is held
    idle. The staircase initialization (site i believes 1..i-1 are
    requesting, site 0 holds the token) guarantees that for any two sites
    at least one will reach the other, which is what makes the heuristic
    safe rather than merely lucky. A token landing on a site that is not
    requesting (a stale pass, routed by that fiction) is dispatched onward
    to any requester the merged view knows of rather than parked — parking
    it would strand requests already consumed by past holders. *)

module Proto = Dmx_sim.Protocol

type site_state = Requesting | Executing | Holding | Nothing

type token = {
  tsv : site_state array;  (** token's view of every site *)
  tsn : int array;  (** request number that view is based on *)
}

type message =
  | Request of int  (** the sender's current request number *)
  | Token of token

type config = unit

type state = {
  self : int;
  n : int;
  sv : site_state array;
  sn : int array;
  mutable has_token : bool;
  mutable in_cs : bool;
}

let name = "singhal-heuristic"
let describe () = "state-vector token"
let message_kind = function Request _ -> "request" | Token _ -> "token"

let pp_message ppf = function
  | Request k -> Format.fprintf ppf "request(#%d)" k
  | Token _ -> Format.pp_print_string ppf "token"

(* Staircase initialization: site i assumes all lower-numbered sites are
   requesting (so it will consult them), and that site 0 holds the token. *)
let init (ctx : message Proto.ctx) () =
  let n = ctx.n in
  let sv =
    Array.init n (fun j -> if j < ctx.self then Requesting else Nothing)
  in
  if ctx.self = 0 then sv.(0) <- Holding;
  {
    self = ctx.self;
    n;
    sv;
    sn = Array.make n 0;
    has_token = (ctx.self = 0);
    in_cs = false;
  }

let enter (ctx : message Proto.ctx) st =
  st.sv.(st.self) <- Executing;
  st.in_cs <- true;
  ctx.enter_cs ()

let send_token (ctx : message Proto.ctx) st tok dst =
  st.has_token <- false;
  if st.sv.(st.self) = Holding then st.sv.(st.self) <- Nothing;
  ctx.send ~dst (Token tok)

(* The idle-token record this site would attach when passing it on. The
   token structure is only materialized while traveling; a holder's local
   sv/sn ARE the freshest view, so we build the token from them. *)
let make_token st = { tsv = Array.copy st.sv; tsn = Array.copy st.sn }

let request_cs (ctx : message Proto.ctx) st =
  assert ((not st.in_cs) && st.sv.(st.self) <> Requesting);
  if st.has_token then enter ctx st
  else begin
    st.sv.(st.self) <- Requesting;
    st.sn.(st.self) <- st.sn.(st.self) + 1;
    for j = 0 to st.n - 1 do
      if j <> st.self then begin
        match st.sv.(j) with
        | Requesting | Executing | Holding ->
          ctx.send ~dst:j (Request st.sn.(st.self))
        | Nothing -> ()
      end
    done
  end

(* Ship the token to the next site the current view shows requesting —
   round-robin from self+1 for fairness — or keep holding it idle. Shared
   by release and by a stale pass (token arriving while not requesting):
   in the latter case holding idle would strand any requester the merged
   view knows about, because its request messages were already consumed
   by sites that no longer have the token and cannot be re-triggered.
   After sending we drop our own "j is requesting" guess: the routing
   obligation is discharged (j either enters or dispatches onward), and
   consuming one believed-requesting edge per hop is what makes a chain
   of stale passes terminate instead of cycling. *)
let dispatch_or_hold (ctx : message Proto.ctx) st =
  st.sv.(st.self) <- Nothing;
  let tok = make_token st in
  let next = ref None in
  for k = 1 to st.n - 1 do
    let j = (st.self + k) mod st.n in
    if !next = None && tok.tsv.(j) = Requesting then next := Some j
  done;
  match !next with
  | Some j ->
    send_token ctx st tok j;
    st.sv.(j) <- Nothing
  | None -> st.sv.(st.self) <- Holding

(* On exit: the holder's local sv/sn already carry the freshest merged
   view, so just dispatch from them. *)
let release_cs (ctx : message Proto.ctx) st =
  assert (st.in_cs && st.has_token);
  st.in_cs <- false;
  dispatch_or_hold ctx st

let on_request (ctx : message Proto.ctx) st ~src k =
  if k > st.sn.(src) then begin
    st.sn.(src) <- k;
    match st.sv.(st.self) with
    | Nothing -> st.sv.(src) <- Requesting
    | Executing -> st.sv.(src) <- Requesting
    | Requesting ->
      if st.sv.(src) <> Requesting then begin
        (* The staircase repair: they did not know about us, so they are
           not waiting on us — tell them we compete too. *)
        st.sv.(src) <- Requesting;
        ctx.send ~dst:src (Request st.sn.(st.self))
      end
    | Holding ->
      (* idle token holder serves immediately *)
      st.sv.(src) <- Requesting;
      st.sv.(st.self) <- Nothing;
      let tok = make_token st in
      send_token ctx st tok src
  end

let on_token (ctx : message Proto.ctx) st ~src (tok : token) =
  st.has_token <- true;
  (* Adopt whatever the token knows strictly better than we do. Ties keep
     the local guess: that preserves the staircase fiction (request number
     0 entries), which is what routes the token through sites that never
     heard a given request. Our own entry is never overwritten — nobody
     knows our state better than we do. The sender's self-entry, however,
     is adopted unconditionally: it just held the token, so its Nothing is
     authoritative, and dropping our stale "src is requesting" guess here
     is what stops two sites with mutually stale views from bouncing the
     token between each other forever. *)
  for j = 0 to st.n - 1 do
    if j <> st.self && tok.tsn.(j) > st.sn.(j) then begin
      st.sn.(j) <- tok.tsn.(j);
      st.sv.(j) <- tok.tsv.(j)
    end
  done;
  if src <> st.self && src >= 0 && src < st.n then begin
    st.sn.(src) <- max st.sn.(src) tok.tsn.(src);
    st.sv.(src) <- tok.tsv.(src)
  end;
  if st.sv.(st.self) = Requesting then enter ctx st
  else
    (* stale pass: pass it on to a known requester or hold it idle *)
    dispatch_or_hold ctx st

let on_message (ctx : message Proto.ctx) st ~src = function
  | Request k -> on_request ctx st ~src k
  | Token tok -> on_token ctx st ~src tok

let on_timer _ctx _st _tag = ()
let on_failure _ctx _st _site = ()
let on_recovery _ctx _st _site = ()

module Internal = struct
  let heuristic_set st =
    List.filter
      (fun j ->
        j <> st.self
        && match st.sv.(j) with Requesting | Executing | Holding -> true | Nothing -> false)
      (List.init st.n Fun.id)

  let has_token st = st.has_token
end
