(** Ricart–Agrawala (1981): Lamport's algorithm with releases merged into
    deferred replies. 2(N−1) messages per CS execution, synchronization
    delay T. *)

type config = unit
type message = Request of Dmx_sim.Timestamp.t | Reply

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message := message

val copy_state : state -> state
(** Deep copy for the model checker. *)
