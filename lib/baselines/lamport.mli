(** Lamport's mutual exclusion algorithm (1978): timestamp-ordered request
    queue replicated at every site. 3(N−1) messages per CS execution,
    synchronization delay T — Table 1's "delay T, O(N) messages" corner. *)

type config = unit

type message =
  | Request of Dmx_sim.Timestamp.t
  | Reply of Dmx_sim.Timestamp.t
  | Release of Dmx_sim.Timestamp.t

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message := message
