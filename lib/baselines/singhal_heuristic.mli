(** Singhal's heuristically-aided token algorithm (1989): Table 1's
    "token-based heuristic" row. Message complexity varies between 0 (the
    requester already holds the token) and N (it must consult everyone);
    synchronization delay T. Each site guesses who is requesting, executing
    or holding the token and sends its request only to that set; the
    staircase initialization and on-the-fly repairs keep the guesses safe. *)

type config = unit
type site_state = Requesting | Executing | Holding | Nothing
type token = { tsv : site_state array; tsn : int array }
type message = Request of int | Token of token

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message := message

(** White-box access for tests. *)
module Internal : sig
  val heuristic_set : state -> int list
  (** The sites this site would consult if it requested now. *)

  val has_token : state -> bool
end
