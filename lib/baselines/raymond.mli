(** Raymond's tree-based token algorithm (1989): O(log N) messages per CS
    on a balanced tree but O(log N) synchronization delay — Table 1's
    low-message/high-delay row, and the paper's argument that message
    complexity and delay are separate axes. *)

type config = { parent : int array }

val binary_tree : n:int -> config
(** Balanced binary spanning tree rooted at site 0 (the token minter). *)

val chain : n:int -> config
(** Linear chain: the O(N) worst-case delay topology. *)

type message = Request | Token

include
  Dmx_sim.Protocol.PROTOCOL
    with type config := config
     and type message := message
