(** Raymond's tree-based token algorithm (1989): Table 1's "O(log N)
    messages but O(log N) delay" row. Sites form a static spanning tree;
    each holds a [holder] pointer toward the token. Requests travel up the
    holder chain, the token travels back down, and the chain reverses as
    it goes. Average message cost O(log N); the synchronization delay is a
    token walk across the tree, hence also O(log N) — the paper's argument
    for why low message count does not imply low delay. *)

module Proto = Dmx_sim.Protocol

type config = {
  parent : int array;
      (** [parent.(i)] in the spanning tree; the root (token minter) has
          parent -1. *)
}

(** A balanced binary spanning tree rooted at site 0. *)
let binary_tree ~n =
  { parent = Array.init n (fun i -> if i = 0 then -1 else (i - 1) / 2) }

(** A chain 0 - 1 - ... - n-1: the worst-case O(N) delay topology. *)
let chain ~n = { parent = Array.init n (fun i -> i - 1) }

type message = Request | Token

type state = {
  self : int;
  mutable holder : int;  (* which neighbor leads to the token; self = here *)
  mutable queue : int list;  (* FIFO of requesters, may include self *)
  mutable asked : bool;  (* a Request is already on its way to holder *)
  mutable in_cs : bool;
}

let name = "raymond"

let describe (c : config) =
  let n = Array.length c.parent in
  let depth =
    let rec up i d = if i < 0 || c.parent.(i) < 0 then d else up c.parent.(i) (d + 1) in
    Array.fold_left max 0 (Array.init n (fun i -> up i 0))
  in
  Printf.sprintf "tree(depth=%d)" depth

let message_kind = function Request -> "request" | Token -> "token"

let pp_message ppf m = Format.pp_print_string ppf (message_kind m)

let init (ctx : message Proto.ctx) (c : config) =
  if Array.length c.parent <> ctx.n then
    invalid_arg "Raymond.init: parent array size mismatch";
  let holder =
    if c.parent.(ctx.self) < 0 then ctx.self else c.parent.(ctx.self)
  in
  { self = ctx.self; holder; queue = []; asked = false; in_cs = false }

(* The two routines of Raymond's paper. [assign_privilege]: a token holder
   that is not using it passes it to the head of its queue (or enters the
   CS if that head is itself). [make_request]: a site with a non-empty
   queue and no token asks its current holder, once. *)
let rec assign_privilege (ctx : message Proto.ctx) st =
  if st.holder = st.self && not st.in_cs then begin
    match st.queue with
    | [] -> ()
    | next :: rest ->
      st.queue <- rest;
      st.asked <- false;
      if next = st.self then begin
        st.in_cs <- true;
        ctx.enter_cs ()
      end
      else begin
        st.holder <- next;
        ctx.send ~dst:next Token;
        make_request ctx st
      end
  end

and make_request (ctx : message Proto.ctx) st =
  if st.holder <> st.self && st.queue <> [] && not st.asked then begin
    st.asked <- true;
    ctx.send ~dst:st.holder Request
  end

let request_cs (ctx : message Proto.ctx) st =
  assert (not st.in_cs);
  st.queue <- st.queue @ [ st.self ];
  assign_privilege ctx st;
  make_request ctx st

let release_cs (ctx : message Proto.ctx) st =
  assert st.in_cs;
  st.in_cs <- false;
  assign_privilege ctx st;
  make_request ctx st

let on_message (ctx : message Proto.ctx) st ~src = function
  | Request ->
    st.queue <- st.queue @ [ src ];
    assign_privilege ctx st;
    make_request ctx st
  | Token ->
    st.holder <- st.self;
    assign_privilege ctx st;
    make_request ctx st

let on_timer _ctx _st _tag = ()
let on_failure _ctx _st _site = ()
let on_recovery _ctx _st _site = ()
