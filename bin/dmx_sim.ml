(* dmx-sim: command-line front end to the simulator.

   dmx-sim run       -- simulate one algorithm and print its report
   dmx-sim compare   -- run every algorithm under the same scenario
   dmx-sim validate  -- re-check a CSV report or BENCH_*.json snapshot
                        against the paper's Section 5 closed forms
   dmx-sim quorums   -- print and validate a quorum construction
   dmx-sim avail     -- availability sweep for a construction
   dmx-sim trace     -- short annotated execution trace of a run
   dmx-sim cluster   -- run a real multi-process cluster over TCP
   dmx-sim node      -- one networked protocol site (cluster member)
*)

(* When the cluster supervisor re-executes this binary as a node image,
   the spec arrives in the environment; nothing else may run first. *)
let () = Dmx_net.Node.run_as_child_if_requested ()
let () = Dmx_service.Snode.run_as_child_if_requested ()

module E = Dmx_sim.Engine
module Net = Dmx_sim.Network
module W = Dmx_sim.Workload
module R = Dmx_baselines.Runner
module B = Dmx_quorum.Builder
open Cmdliner

(* ---- shared argument parsing ---- *)

let delay_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
           (Printf.sprintf
              "bad delay %S (expected constant:D | uniform:LO,HI | exp:MEAN \
               | shifted:BASE,MEAN)" s))
    in
    match String.split_on_char ':' s with
    | [ "constant"; d ] -> (
      match float_of_string_opt d with
      | Some d -> Ok (Net.Constant d)
      | None -> fail ())
    | [ "uniform"; rest ] -> (
      match String.split_on_char ',' rest with
      | [ lo; hi ] -> (
        match (float_of_string_opt lo, float_of_string_opt hi) with
        | Some lo, Some hi -> Ok (Net.Uniform { lo; hi })
        | _ -> fail ())
      | _ -> fail ())
    | [ "exp"; m ] -> (
      match float_of_string_opt m with
      | Some mean -> Ok (Net.Exponential { mean })
      | None -> fail ())
    | [ "shifted"; rest ] -> (
      match String.split_on_char ',' rest with
      | [ b; m ] -> (
        match (float_of_string_opt b, float_of_string_opt m) with
        | Some base, Some extra_mean ->
          Ok (Net.Shifted_exponential { base; extra_mean })
        | _ -> fail ())
      | _ -> fail ())
    | _ -> fail ()
  in
  Arg.conv (parse, Net.pp_delay_model)

let workload_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "saturated" ] -> Ok `Saturated_all
    | [ "saturated"; c ] -> (
      match int_of_string_opt c with
      | Some c -> Ok (`Saturated c)
      | None -> Error (`Msg "bad contender count"))
    | [ "poisson"; r ] -> (
      match float_of_string_opt r with
      | Some r -> Ok (`Poisson r)
      | None -> Error (`Msg "bad poisson rate"))
    | [ "open-loop"; ar ] -> (
      match String.split_on_char ',' ar with
      | [ a; r ] -> (
        match (int_of_string_opt a, float_of_string_opt r) with
        | Some active, Some rate -> Ok (`Open_loop (active, rate))
        | _ -> Error (`Msg "bad open-loop (expected ACTIVE,RATE)"))
      | _ -> Error (`Msg "bad open-loop (expected ACTIVE,RATE)"))
    | [ "burst" ] -> Ok `Burst_all
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad workload %S (expected saturated[:C] | poisson:RATE | \
               open-loop:ACTIVE,RATE | burst)"
              s))
  in
  let pp ppf = function
    | `Saturated_all -> Format.pp_print_string ppf "saturated"
    | `Saturated c -> Format.fprintf ppf "saturated:%d" c
    | `Poisson r -> Format.fprintf ppf "poisson:%g" r
    | `Open_loop (a, r) -> Format.fprintf ppf "open-loop:%d,%g" a r
    | `Burst_all -> Format.pp_print_string ppf "burst"
  in
  Arg.conv (parse, pp)

let kind_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (B.parse_kind s) in
  Arg.conv (parse, B.pp_kind)

let crash_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ t; site ] -> (
      match (float_of_string_opt t, int_of_string_opt site) with
      | Some t, Some site -> Ok (t, site)
      | _ -> Error (`Msg "bad crash (expected TIME:SITE)"))
    | _ -> Error (`Msg "bad crash (expected TIME:SITE)")
  in
  let pp ppf (t, s) = Format.fprintf ppf "%g:%d" t s in
  Arg.conv (parse, pp)

let n_arg =
  Arg.(
    value & opt int 25
    & info [ "n"; "sites" ] ~docv:"N" ~doc:"Number of sites.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let execs_arg =
  Arg.(
    value & opt int 300
    & info [ "execs" ] ~docv:"COUNT" ~doc:"CS executions to simulate.")

let warmup_arg =
  Arg.(
    value & opt int 30
    & info [ "warmup" ] ~docv:"COUNT"
        ~doc:"Executions excluded from statistics.")

let cs_arg =
  Arg.(
    value & opt float 1.0
    & info [ "cs" ] ~docv:"E" ~doc:"CS execution time, in units of T.")

let delay_arg =
  Arg.(
    value
    & opt delay_conv (Net.Constant 1.0)
    & info [ "delay" ] ~docv:"MODEL"
        ~doc:
          "Message delay model: constant:D, uniform:LO,HI, exp:MEAN or \
           shifted:BASE,MEAN.")

let workload_arg =
  Arg.(
    value & opt workload_conv `Saturated_all
    & info [ "load" ] ~docv:"WORKLOAD"
        ~doc:
          "Workload: saturated[:CONTENDERS], poisson:RATE, \
           open-loop:ACTIVE,RATE (Poisson at the first ACTIVE sites only; \
           the huge-N workload) or burst.")

let quorum_arg =
  Arg.(
    value & opt kind_conv B.Grid
    & info [ "quorum" ] ~docv:"KIND"
        ~doc:
          "Quorum construction for quorum-based algorithms: grid, fpp, \
           tree, majority, hqc, grid-set:G, rst:G, star, all.")

let crashes_arg =
  Arg.(
    value & opt_all crash_conv []
    & info [ "crash" ] ~docv:"TIME:SITE"
        ~doc:"Inject a fail-stop crash (repeatable).")

let detect_arg =
  Arg.(
    value & opt float 3.0
    & info [ "detect" ] ~docv:"DELAY"
        ~doc:"Failure detection latency (oracle detector).")

let detector_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "oracle" ] -> Ok `Oracle
    | [ "heartbeat" ] -> Ok (`Heartbeat Dmx_sim.Detector.default)
    | [ "heartbeat"; rest ] -> (
      match String.split_on_char ',' rest with
      | [ p; t ] -> (
        match (float_of_string_opt p, float_of_string_opt t) with
        | Some period, Some timeout ->
          Ok (`Heartbeat { Dmx_sim.Detector.period; timeout })
        | _ -> Error (`Msg "bad heartbeat parameters"))
      | _ -> Error (`Msg "bad heartbeat parameters"))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad detector %S (expected oracle | heartbeat[:PERIOD,TIMEOUT])"
              s))
  in
  let pp ppf = function
    | `Oracle -> Format.pp_print_string ppf "oracle"
    | `Heartbeat c -> Format.fprintf ppf "heartbeat:%a" Dmx_sim.Detector.pp_config c
  in
  Arg.conv (parse, pp)

let detector_arg =
  Arg.(
    value & opt detector_conv `Oracle
    & info [ "detector" ] ~docv:"KIND"
        ~doc:
          "Failure detector: oracle (perfect, latency from $(b,--detect)) or \
           heartbeat:PERIOD,TIMEOUT (unreliable, may falsely suspect).")

let loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P" ~doc:"Per-message loss probability in [0,1).")

let dup_arg =
  Arg.(
    value & opt float 0.0
    & info [ "dup" ] ~docv:"P"
        ~doc:"Per-message duplication probability in [0,1).")

let partition_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
           (Printf.sprintf
              "bad partition %S (expected FROM:UNTIL:G1|G2, groups like \
               0,1|2,3; UNTIL may be inf)" s))
    in
    match String.split_on_char ':' s with
    | [ from_s; until_s; groups_s ] -> (
      match (float_of_string_opt from_s, float_of_string_opt until_s) with
      | Some from_t, Some until -> (
        try
          let groups =
            List.map
              (fun g ->
                List.map
                  (fun x ->
                    match int_of_string_opt (String.trim x) with
                    | Some v -> v
                    | None -> raise Exit)
                  (String.split_on_char ',' g))
              (String.split_on_char '|' groups_s)
          in
          Ok { Net.from_t; until; groups }
        with Exit -> fail ())
      | _ -> fail ())
    | _ -> fail ()
  in
  let pp ppf (p : Net.partition) =
    Format.fprintf ppf "%g:%g:%s" p.Net.from_t p.Net.until
      (String.concat "|"
         (List.map
            (fun g -> String.concat "," (List.map string_of_int g))
            p.Net.groups))
  in
  Arg.conv (parse, pp)

let partition_arg =
  Arg.(
    value & opt_all partition_conv []
    & info [ "partition" ] ~docv:"FROM:UNTIL:G1|G2"
        ~doc:
          "Partition the network between FROM and UNTIL into groups (sites \
           comma-separated, groups |-separated; unlisted sites form one \
           extra group). Repeatable.")

let spike_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ f; u; k ] -> (
      match
        (float_of_string_opt f, float_of_string_opt u, float_of_string_opt k)
      with
      | Some from_t, Some until, Some factor -> Ok (from_t, until, factor)
      | _ -> Error (`Msg "bad spike (expected FROM:UNTIL:FACTOR)"))
    | _ -> Error (`Msg "bad spike (expected FROM:UNTIL:FACTOR)")
  in
  let pp ppf (f, u, k) = Format.fprintf ppf "%g:%g:%g" f u k in
  Arg.conv (parse, pp)

let spike_arg =
  Arg.(
    value & opt_all spike_conv []
    & info [ "spike" ] ~docv:"FROM:UNTIL:FACTOR"
        ~doc:"Multiply message delays by FACTOR between FROM and UNTIL. \
              Repeatable.")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Print a CSV record instead of text.")

let faults_of loss dup partitions spikes =
  { Net.loss; duplication = dup; partitions; delay_spikes = spikes }

let make_cfg ?(faults = Net.no_faults) ?(det = `Oracle) n seed execs warmup cs
    delay workload crashes detect =
  let wl =
    match workload with
    | `Saturated_all -> W.Saturated { contenders = n }
    | `Saturated c -> W.Saturated { contenders = min c n }
    | `Poisson rate_per_site -> W.Poisson { rate_per_site }
    | `Open_loop (active, rate_per_site) ->
      W.Open_loop { active = min active n; rate_per_site }
    | `Burst_all -> W.Burst { requesters = List.init n Fun.id; at = 0.0 }
  in
  {
    (E.default ~n) with
    seed;
    max_executions = execs;
    warmup;
    cs_duration = cs;
    delay;
    workload = wl;
    crashes;
    detector =
      (match det with
      | `Oracle -> E.Oracle detect
      | `Heartbeat c -> E.Heartbeat c);
    faults;
    max_time = 1.0e9;
  }

(* Reliability/detector wiring lives in [Runner.of_algo]; this shim only
   translates the CLI's polymorphic-variant detector into the engine's. *)
let runner_of_algo ?(faults = Net.no_faults) ?(det = `Oracle) algo kind ~n =
  let detector =
    match det with
    | `Oracle -> E.Oracle 3.0
    | `Heartbeat c -> E.Heartbeat c
  in
  R.of_algo ~faults ~detector ~kind algo ~n

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Verify every run post-hoc with the trace oracle (mutex, quorum \
           consistency, permission conservation, FIFO); exit nonzero on \
           rejection.")

let jobs_arg =
  Arg.(
    value
    & opt int (Dmx_sim.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for independent simulation runs (default: \
           recommended domain count). Results are collected by job index, \
           so output is bit-identical at any value; see PERFORMANCE.md.")

let exit_checked code =
  if Atomic.get R.check_failures > 0 then exit 3 else if code <> 0 then exit code

let csv_header =
  "algorithm,variant,n,executions,messages,msgs_per_cs,sync_mean,sync_p99,\
   resp_mean,resp_p99,throughput,violations,deadlocked,pending,retx,\
   unavail_windows,unavail_time"

let csv_line (r : E.report) variant =
  let s = Dmx_sim.Stats.Summary.mean in
  let p x = Dmx_sim.Stats.Summary.percentile x 99.0 in
  Printf.sprintf "%s,%s,%d,%d,%d,%.3f,%.4f,%.4f,%.4f,%.4f,%.6f,%d,%b,%d,%d,%d,%.4f"
    r.E.protocol variant r.E.n r.E.executions r.E.total_messages
    r.E.messages_per_cs (s r.E.sync_delay) (p r.E.sync_delay)
    (s r.E.response_time) (p r.E.response_time) r.E.throughput r.E.violations
    r.E.deadlocked r.E.pending_at_end r.E.retransmissions
    (Dmx_sim.Stats.Summary.count r.E.unavailability)
    (Dmx_sim.Stats.Summary.total r.E.unavailability)

(* ---- run ---- *)

let run_cmd =
  let algo_arg =
    Arg.(
      value & opt string "delay-optimal"
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:
            "Algorithm: delay-optimal, ft-delay-optimal, maekawa, lamport, \
             ricart-agrawala, singhal-dynamic, suzuki-kasami, \
             singhal-heuristic, raymond, raymond-chain.")
  in
  let lazy_arg =
    Arg.(
      value & flag
      & info [ "lazy-coteries" ]
          ~doc:
            "Generate quorums on demand from the construction's structure \
             and instantiate sites lazily: memory follows the sites that \
             act, not N, so universes of 10^6 sites run in-process. \
             delay-optimal only; pair with --load open-loop:ACTIVE,RATE or \
             --load saturated:C.")
  in
  let action algo kind n seed execs warmup cs delay workload crashes detect det
      loss dup partitions spikes csv check lazy_coteries =
    if check then Atomic.set R.always_check true;
    let faults = faults_of loss dup partitions spikes in
    let finish (r : E.report) variant =
      if csv then begin
        print_endline csv_header;
        print_endline (csv_line r variant)
      end
      else Format.printf "%a@." E.pp_report r;
      exit_checked (if r.E.violations > 0 then 2 else 0)
    in
    if lazy_coteries then begin
      if algo <> "delay-optimal" then begin
        prerr_endline "--lazy-coteries supports only --algo delay-optimal";
        exit 1
      end;
      if check then begin
        prerr_endline
          "--lazy-coteries bypasses the trace oracle; drop --check";
        exit 1
      end;
      if not (B.supports kind ~n) then begin
        Printf.eprintf "%s does not support n=%d\n" (B.kind_name kind) n;
        exit 1
      end;
      let cfg =
        {
          (make_cfg ~faults ~det n seed execs warmup cs delay workload crashes
             detect)
          with
          E.lazy_sites = true;
        }
      in
      let module M = E.Make (Dmx_core.Delay_optimal) in
      let r =
        M.run cfg
          (Dmx_core.Delay_optimal.config_of_assignment (B.assignment kind ~n))
      in
      finish r (B.kind_name kind)
    end
    else
      match runner_of_algo ~faults ~det algo kind ~n with
      | Error e ->
        prerr_endline e;
        exit 1
      | Ok runner ->
        let cfg =
          make_cfg ~faults ~det n seed execs warmup cs delay workload crashes
            detect
        in
        let r = runner.R.run cfg in
        finish r runner.R.variant
  in
  let term =
    Term.(
      const action $ algo_arg $ quorum_arg $ n_arg $ seed_arg $ execs_arg
      $ warmup_arg $ cs_arg $ delay_arg $ workload_arg $ crashes_arg
      $ detect_arg $ detector_arg $ loss_arg $ dup_arg $ partition_arg
      $ spike_arg $ csv_arg $ check_arg $ lazy_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one mutual exclusion algorithm.")
    term

(* ---- compare ---- *)

let compare_cmd =
  let action n seed execs warmup cs delay workload csv check =
    if check then Atomic.set R.always_check true;
    let cfg = make_cfg n seed execs warmup cs delay workload [] 3.0 in
    let runners = R.all ~n in
    let bad = ref 0 in
    let note (r : E.report) =
      if r.E.violations > 0 || r.E.deadlocked then incr bad;
      r
    in
    if csv then begin
      print_endline csv_header;
      List.iter
        (fun runner ->
          print_endline (csv_line (note (runner.R.run cfg)) runner.R.variant))
        runners
    end
    else begin
      Format.printf "n=%d seed=%d delay=%a cs=%g load=%a@." n seed
        Net.pp_delay_model delay cs W.pp cfg.E.workload;
      Format.printf "%-16s %10s %10s %10s %12s %6s@." "algorithm" "msgs/CS"
        "sync" "resp" "throughput/T" "viol";
      List.iter
        (fun runner ->
          let r = note (runner.R.run cfg) in
          Format.printf "%-16s %10.1f %10.2f %10.1f %12.3f %6d%s@."
            r.E.protocol r.E.messages_per_cs
            (Dmx_sim.Stats.Summary.mean r.E.sync_delay)
            (Dmx_sim.Stats.Summary.mean r.E.response_time)
            (r.E.throughput *. r.E.mean_delay)
            r.E.violations
            (if r.E.deadlocked then " DEADLOCK" else ""))
        runners
    end;
    exit_checked (if !bad > 0 then 2 else 0)
  in
  let term =
    Term.(
      const action $ n_arg $ seed_arg $ execs_arg $ warmup_arg $ cs_arg
      $ delay_arg $ workload_arg $ csv_arg $ check_arg)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run every algorithm under one scenario and tabulate.")
    term

(* ---- quorums ---- *)

let quorums_cmd =
  let show_arg =
    Arg.(value & flag & info [ "show" ] ~doc:"Print every request set.")
  in
  let action kind n show =
    if not (B.supports kind ~n) then begin
      Printf.printf "%s does not support n=%d\n" (B.kind_name kind) n;
      exit 1
    end;
    let rs = B.req_sets kind ~n in
    let st = B.size_stats rs in
    (match B.validate ~n rs with
    | Ok () -> Printf.printf "%s over %d sites: VALID coterie assignment\n" (B.kind_name kind) n
    | Error e ->
      Printf.printf "INVALID: %s\n" e;
      exit 2);
    Printf.printf "quorum size: min=%d max=%d mean=%.2f\n" st.B.k_min st.B.k_max
      st.B.k_mean;
    Printf.printf "minimal (no quorum contains another): %b\n" (B.minimal ~n rs);
    if show then
      Array.iteri
        (fun i q ->
          Printf.printf "  req_set(%d) = {%s}\n" i
            (String.concat "," (List.map string_of_int q)))
        rs
  in
  let term = Term.(const action $ quorum_arg $ n_arg $ show_arg) in
  Cmd.v
    (Cmd.info "quorums" ~doc:"Build, validate and display a quorum construction.")
    term

(* ---- avail ---- *)

let avail_cmd =
  let trials_arg =
    Arg.(
      value & opt int 20_000
      & info [ "trials" ] ~docv:"T" ~doc:"Monte-Carlo trials.")
  in
  let action kind n trials =
    if not (B.supports kind ~n) then begin
      Printf.printf "%s does not support n=%d\n" (B.kind_name kind) n;
      exit 1
    end;
    Printf.printf "availability of %s over %d sites\n" (B.kind_name kind) n;
    Printf.printf "%8s %12s\n" "p(up)" "availability";
    List.iter
      (fun p ->
        Printf.printf "%8.2f %12.4f\n" p
          (Dmx_quorum.Availability.estimate ~trials kind ~n ~p_up:p))
      [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99; 1.0 ]
  in
  let term = Term.(const action $ quorum_arg $ n_arg $ trials_arg) in
  Cmd.v
    (Cmd.info "avail" ~doc:"Availability sweep for a quorum construction.")
    term

(* ---- sweep ---- *)

let sweep_cmd =
  let axis_conv =
    let parse = function
      | "n" -> Ok `N
      | "rate" -> Ok `Rate
      | "cs" -> Ok `Cs
      | s -> Error (`Msg (Printf.sprintf "bad axis %S (expected n|rate|cs)" s))
    in
    let pp ppf a =
      Format.pp_print_string ppf
        (match a with `N -> "n" | `Rate -> "rate" | `Cs -> "cs")
    in
    Arg.conv (parse, pp)
  in
  let axis_arg =
    Arg.(
      value & opt axis_conv `N
      & info [ "axis" ] ~docv:"AXIS"
          ~doc:
            "Swept parameter: n (sites), rate (poisson load) or cs (CS \
             duration).")
  in
  let values_arg =
    Arg.(
      value
      & opt (list ~sep:',' float) [ 9.; 16.; 25.; 49. ]
      & info [ "values" ] ~docv:"V1,V2,..." ~doc:"Values to sweep.")
  in
  let algos_arg =
    Arg.(
      value
      & opt (list ~sep:',' string) [ "delay-optimal"; "maekawa" ]
      & info [ "algos" ] ~docv:"A1,A2,..." ~doc:"Algorithms to include.")
  in
  let action axis values algos kind n seed execs warmup cs delay workload jobs
      =
    print_endline ("axis,value," ^ csv_header);
    let axis_name =
      match axis with `N -> "n" | `Rate -> "rate" | `Cs -> "cs"
    in
    (* The (value x algo) grid is a fixed job list of independent seeded
       runs: fan out on domains, print in grid order afterwards — the CSV
       is byte-identical at any job count. *)
    let grid =
      List.concat_map (fun v -> List.map (fun algo -> (v, algo)) algos) values
    in
    let results =
      Dmx_sim.Pool.map ~jobs
        (fun (v, algo) ->
          let n, cs, workload =
            match axis with
            | `N -> (int_of_float v, cs, workload)
            | `Rate -> (n, cs, `Poisson v)
            | `Cs -> (n, v, workload)
          in
          match runner_of_algo algo kind ~n with
          | Error e -> Error e
          | Ok runner ->
            let cfg = make_cfg n seed execs warmup cs delay workload [] 3.0 in
            let r = runner.R.run cfg in
            Ok
              ( Printf.sprintf "%s,%g,%s" axis_name v
                  (csv_line r runner.R.variant),
                r.E.violations > 0 || r.E.deadlocked ))
        grid
    in
    let bad = ref 0 in
    List.iter
      (function
        | Error e ->
          prerr_endline e;
          exit 1
        | Ok (line, b) ->
          if b then incr bad;
          print_endline line)
      results;
    exit_checked (if !bad > 0 then 2 else 0)
  in
  let term =
    Term.(
      const action $ axis_arg $ values_arg $ algos_arg $ quorum_arg $ n_arg
      $ seed_arg $ execs_arg $ warmup_arg $ cs_arg $ delay_arg $ workload_arg
      $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep one parameter across algorithms and print CSV (for plotting).")
    term

(* ---- trace ---- *)

let trace_cmd =
  let limit_arg =
    Arg.(
      value & opt int 200
      & info [ "limit" ] ~docv:"LINES" ~doc:"Maximum trace lines to print.")
  in
  let action algo kind n seed execs cs delay workload limit =
    match runner_of_algo algo kind ~n with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok _ ->
      (* tracing needs the concrete engine; handle the common cases *)
      let cfg =
        { (make_cfg n seed execs 0 cs delay workload [] 3.0) with trace = true }
      in
      let sink = Dmx_sim.Trace.create ~enabled:true () in
      let report =
        match algo with
        | "maekawa" ->
          let module M = E.Make (Dmx_baselines.Maekawa_me) in
          M.run ~trace_sink:sink cfg
            { Dmx_baselines.Maekawa_me.req_sets = B.req_sets kind ~n }
        | _ ->
          let module M = E.Make (Dmx_core.Delay_optimal) in
          M.run ~trace_sink:sink cfg
            (Dmx_core.Delay_optimal.config (B.req_sets kind ~n))
      in
      let entries = Dmx_sim.Trace.entries sink in
      List.iteri
        (fun i e ->
          if i < limit then
            Format.printf "%a@." Dmx_sim.Trace.pp_entry e)
        entries;
      if List.length entries > limit then
        Printf.printf "... (%d more lines)\n" (List.length entries - limit);
      print_string (Dmx_sim.Trace.timeline sink ~n);
      Format.printf "---@.%a@." E.pp_report report
  in
  let term =
    Term.(
      const action $ Arg.(value & opt string "delay-optimal" & info [ "algo"; "a" ])
      $ quorum_arg $ n_arg $ seed_arg
      $ Arg.(value & opt int 10 & info [ "execs" ])
      $ cs_arg $ delay_arg $ workload_arg $ limit_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Print an annotated message trace of a short run (delay-optimal or \
          maekawa).")
    term

(* ---- replay ---- *)

let replay_cmd =
  let files_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "One or more .dmxrepro schedules, e.g. shrunk by the fuzz \
             harness. Several files replay in parallel (see $(b,--jobs)); \
             output stays in argument order.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Only print the oracle verdict.")
  in
  let tail_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tail" ] ~docv:"N"
          ~doc:
            "Print the last $(docv) trace entries (0 for all) — the usual \
             first question about a reproducer is what it was doing when it \
             stopped.")
  in
  (* Replays one file into strings (stdout text, stderr text, exit code)
     so several files can run on worker domains without interleaving. *)
  let replay_one ~quiet ~tail file =
    let buf = Buffer.create 1024 in
    let ppf = Format.formatter_of_buffer buf in
    let code =
      match Dmx_sim.Oracle.replay_file file with
      | Error e -> Error e
      | Ok sched -> (
        match R.run_schedule sched with
        | Error e -> Error e
        | Ok (report, trace) ->
          if not quiet then begin
            Buffer.add_string buf (Dmx_sim.Schedule.to_string sched);
            Format.fprintf ppf "---@.%a@." E.pp_report report
          end;
          (* same per-fault relaxation as Runner.checked: FIFO and custody
             assumptions do not survive crash/recovery or duplication *)
          let crashy = sched.Dmx_sim.Schedule.crashes <> [] in
          let dupy =
            sched.Dmx_sim.Schedule.faults.Dmx_sim.Network.duplication > 0.0
          in
          let verdict =
            Dmx_sim.Oracle.check_trace
              {
                (Dmx_sim.Oracle.default ~n:sched.Dmx_sim.Schedule.n) with
                Dmx_sim.Oracle.fifo = not (crashy || dupy);
                custody = not crashy;
              }
              trace
          in
          (match tail with
          | Some k ->
            let entries = Dmx_sim.Trace.entries trace in
            let total = List.length entries in
            let drop = if k <= 0 then 0 else max 0 (total - k) in
            if drop > 0 then
              Format.fprintf ppf "... (%d earlier entries)@." drop;
            List.iteri
              (fun i e ->
                if i >= drop then
                  Format.fprintf ppf "%a@." Dmx_sim.Trace.pp_entry e)
              entries
          | None -> ());
          Format.fprintf ppf "%a@." Dmx_sim.Oracle.pp_verdict verdict;
          if
            report.E.violations > 0 || report.E.deadlocked
            || not (Dmx_sim.Oracle.ok verdict)
          then Ok 2
          else Ok 0)
    in
    Format.pp_print_flush ppf ();
    (Buffer.contents buf, code)
  in
  let action files quiet tail jobs =
    let results = Dmx_sim.Pool.map ~jobs (replay_one ~quiet ~tail) files in
    let many = List.length files > 1 in
    let worst = ref 0 in
    List.iter2
      (fun file (out, code) ->
        if many then Printf.printf "=== %s ===\n" file;
        print_string out;
        match code with
        | Error e ->
          prerr_endline e;
          worst := max !worst 1
        | Ok c -> worst := max !worst c)
      files results;
    if !worst <> 0 then exit !worst
  in
  let term = Term.(const action $ files_arg $ quiet_arg $ tail_arg $ jobs_arg) in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a $(b,.dmxrepro) reproducer bit-for-bit and re-check it \
          with the trace oracle (exit 2 when the violation reproduces).")
    term

(* ---- bench ---- *)

let bench_cmd =
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Smaller execution quotas (smoke mode).")
  in
  let json_arg =
    Arg.(
      value
      & opt ~vopt:(Some "BENCH_pr5.json") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write a machine-readable perf snapshot (wall-clock, events/sec \
             and peak heap per experiment) to $(docv); defaults to \
             BENCH_pr5.json. Field reference in PERFORMANCE.md.")
  in
  let exps_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Experiments to run (default: the full suite). List them with \
             $(b,--list).")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the registered experiments and exit.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Re-check the measured tables against the paper's Section 5 \
             closed forms (Table 1 message bands, sync delay T vs 2T, \
             throughput bounds, M/M/1 waiting time); exit 2 on any band \
             violation. Covers the T1/E1/E3/E4/E6/E11/A3 experiments.")
  in
  let validate_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate-out" ] ~docv:"FILE"
          ~doc:"Also write the validation verdicts to $(docv) (implies \
                $(b,--validate)).")
  in
  let action quick check jobs json validate validate_out list exps =
    if list then Dmx_bench.Suite.print_experiments ()
    else
      match Dmx_bench.Suite.resolve exps with
      | Error unknown ->
        Printf.eprintf "unknown experiment(s): %s\n"
          (String.concat ", " unknown);
        exit 1
      | Ok to_run ->
        exit
          (Dmx_bench.Suite.run ~jobs ?json
             ~validate:(validate || validate_out <> None)
             ?validate_out ~quick ~check to_run)
  in
  let term =
    Term.(
      const action $ quick_arg $ check_arg $ jobs_arg $ json_arg $ validate_arg
      $ validate_out_arg $ list_arg $ exps_arg)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the paper-reproduction experiment suite (tables, figures, \
          model check, micro-benchmarks).")
    term

(* ---- validate: re-check past output against the analytic model ---- *)

let validate_cmd =
  let module Mdl = Dmx_model.Model in
  let module Snap = Dmx_model.Snapshot in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A CSV report from $(b,run)/$(b,compare)/$(b,sweep) $(b,--csv), \
             or a $(b,BENCH_*.json) perf snapshot (detected by content).")
  in
  let t_arg =
    Arg.(
      value & opt float 1.0
      & info [ "t" ] ~docv:"T"
          ~doc:"Mean message delay T the CSV rows were measured at.")
  in
  let load_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ "light" ] -> Ok Mdl.Light
      | [ "heavy" ] -> Ok Mdl.Heavy
      | [ "poisson"; r ] -> (
        match float_of_string_opt r with
        | Some r when r > 0.0 -> Ok (Mdl.Poisson r)
        | _ -> Error (`Msg "bad poisson rate"))
      | _ ->
        Error
          (`Msg
             (Printf.sprintf "bad load %S (expected light | heavy | poisson:RATE)" s))
    in
    let pp ppf = function
      | Mdl.Light -> Format.pp_print_string ppf "light"
      | Mdl.Heavy -> Format.pp_print_string ppf "heavy"
      | Mdl.Poisson r -> Format.fprintf ppf "poisson:%g" r
    in
    Arg.conv (parse, pp)
  in
  let load_arg =
    Arg.(
      value & opt load_conv Mdl.Heavy
      & info [ "load" ] ~docv:"LOAD"
          ~doc:
            "Load regime the CSV rows were measured under: light, heavy \
             (default) or poisson:RATE.")
  in
  let random_arg =
    Arg.(
      value & flag
      & info [ "random-delays" ]
          ~doc:
            "The rows were measured under a random delay model (mean T), \
             not constant delays; widens the sync-delay bands.")
  in
  let validate_json file contents =
    match Snap.parse contents with
    | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      exit 1
    | Ok (snap, warnings) ->
      List.iter (fun w -> Printf.printf "warning: %s\n" w) warnings;
      Format.printf "%a" Snap.pp snap;
      let issues = Snap.consistency snap in
      List.iter (fun i -> Printf.printf "FAIL %s\n" i) issues;
      if issues = [] then print_endline "snapshot OK" else exit 2
  in
  let validate_csv file contents ~e ~t ~load ~random =
    let bad fmt = Printf.ksprintf (fun m -> Printf.eprintf "%s: %s\n" file m; exit 1) fmt in
    let lines =
      List.filteri (fun _ l -> String.trim l <> "")
        (String.split_on_char '\n' contents)
    in
    match lines with
    | [] -> bad "empty file"
    | header :: rows ->
      let sweep = String.starts_with ~prefix:"axis,value," header in
      let expected = if sweep then "axis,value," ^ csv_header else csv_header in
      if String.trim header <> expected then
        bad "unrecognized CSV header (expected the %s output of run/compare/sweep --csv)"
          (if sweep then "sweep" else "run");
      let shape = if random then Mdl.Random else Mdl.Constant in
      let verdicts =
        List.concat_map
          (fun (lineno, line) ->
            let cells = String.split_on_char ',' line in
            let cells =
              if sweep then match cells with _ :: _ :: r -> r | _ -> []
              else cells
            in
            match cells with
            | algorithm :: variant :: n :: _execs :: _msgs :: msgs :: sync
              :: _sync_p99 :: resp :: _resp_p99 :: thr :: _ ->
              let num what s =
                match float_of_string_opt s with
                | Some v -> v
                | None -> bad "line %d: bad %s %S" lineno what s
              in
              let n =
                match int_of_string_opt n with
                | Some n when n > 0 -> n
                | _ -> bad "line %d: bad site count %S" lineno n
              in
              let kind =
                match B.parse_kind variant with Ok k -> Some k | Error _ -> None
              in
              let params =
                Mdl.params ?kind ~algorithm ~n ~e ~t ~load ~delay_shape:shape ()
              in
              let m =
                {
                  Mdl.source = Printf.sprintf "%s:%d %s" file lineno algorithm;
                  params;
                  msgs_per_cs = Some (num "msgs_per_cs" msgs);
                  (* same rules as Model.of_report: light load has too few
                     contended handoffs to average sync over; heavy-load
                     response is queueing-dominated and unpinned by §5 *)
                  sync_delay =
                    (match load with
                    | Mdl.Light -> None
                    | _ -> Some (num "sync_mean" sync));
                  response_time =
                    (match load with
                    | Mdl.Heavy -> None
                    | _ -> Some (num "resp_mean" resp));
                  throughput =
                    (match load with
                    | Mdl.Heavy -> Some (num "throughput" thr)
                    | _ -> None);
                }
              in
              Mdl.check_measurement m
            | _ -> bad "line %d: too few CSV fields" lineno)
          (List.mapi (fun i l -> (i + 2, l)) rows)
      in
      List.iter
        (fun (v : Mdl.verdict) ->
          Printf.printf "%s %s\n" (if v.Mdl.ok then "pass" else "FAIL")
            v.Mdl.message)
        verdicts;
      let failed = List.length (List.filter (fun v -> not v.Mdl.ok) verdicts) in
      Printf.printf "model verdicts: %d checked, %d failed\n"
        (List.length verdicts) failed;
      if failed > 0 then exit 2
  in
  let action file e t load random =
    let contents = In_channel.with_open_bin file In_channel.input_all in
    let trimmed = String.trim contents in
    if trimmed <> "" && trimmed.[0] = '{' then validate_json file contents
    else validate_csv file contents ~e ~t ~load ~random
  in
  let term =
    Term.(const action $ file_arg $ cs_arg $ t_arg $ load_arg $ random_arg)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Re-check measured output against the paper's Section 5 closed \
          forms: a $(b,--csv) report is checked row by row against the \
          analytic message/delay/throughput bands (tell it the scenario via \
          $(b,--cs), $(b,--t), $(b,--load), $(b,--random-delays)); a \
          $(b,BENCH_*.json) snapshot is schema-checked and audited for \
          internal consistency. Exit 1 on unreadable input, 2 on any \
          violation.")
    term

(* ---- cluster / node: the real networked runtime ---- *)

(* SITE@TIME for the kill/restart schedule, e.g. 1@2s (the trailing s is
   optional); returned as (time, site) to match the engine's crash lists. *)
let at_conv =
  let parse s =
    let fail () = Error (`Msg (Printf.sprintf "bad schedule entry %S (expected SITE@TIMEs, e.g. 1@2s)" s)) in
    match String.split_on_char '@' s with
    | [ site; time ] -> (
      let time =
        if String.length time > 0 && time.[String.length time - 1] = 's' then
          String.sub time 0 (String.length time - 1)
        else time
      in
      match (int_of_string_opt site, float_of_string_opt time) with
      | Some site, Some t when t >= 0.0 -> Ok (t, site)
      | _ -> fail ())
    | _ -> fail ()
  in
  let pp ppf (t, s) = Format.fprintf ppf "%d@%gs" s t in
  Arg.conv (parse, pp)

let proto_arg =
  Arg.(
    value & opt string "ft-delay-optimal"
    & info [ "protocol"; "p" ] ~docv:"PROTO"
        ~doc:"Protocol to run: delay-optimal or ft-delay-optimal.")

let hb_arg =
  Arg.(
    value & opt float 0.1
    & info [ "hb" ] ~docv:"SECONDS" ~doc:"Heartbeat period.")

let hbto_arg =
  Arg.(
    value & opt float 1.0
    & info [ "hb-timeout" ] ~docv:"SECONDS"
        ~doc:"Heartbeat silence before a peer is suspected.")

let rto_arg =
  Arg.(
    value & opt float 0.25
    & info [ "rto" ] ~docv:"SECONDS"
        ~doc:"Reliability-layer base retransmission timeout.")

(* chaos partition windows: GROUPS@FROM-UNTIL, e.g. "0,1|2,3,4@1s-2s"
   (times are seconds after the workload starts; trailing s optional) *)
let cluster_partition_conv =
  let strip_s t =
    if String.length t > 0 && t.[String.length t - 1] = 's' then
      String.sub t 0 (String.length t - 1)
    else t
  in
  let parse s =
    let fail () =
      Error
        (`Msg
           (Printf.sprintf
              "bad partition %S (expected GROUPS@FROM-UNTIL, e.g. \
               0,1|2,3,4@1s-2s)" s))
    in
    match String.split_on_char '@' s with
    | [ groups_s; window ] -> (
      match String.split_on_char '-' window with
      | [ from_s; until_s ] -> (
        match
          ( float_of_string_opt (strip_s from_s),
            float_of_string_opt (strip_s until_s) )
        with
        | Some from_t, Some until -> (
          try
            let groups =
              List.map
                (fun g ->
                  List.map
                    (fun x ->
                      match int_of_string_opt (String.trim x) with
                      | Some v -> v
                      | None -> raise Exit)
                    (String.split_on_char ',' g))
                (String.split_on_char '|' groups_s)
            in
            Ok { Dmx_net.Chaos.from_t; until; groups }
          with Exit -> fail ())
        | _ -> fail ())
      | _ -> fail ())
    | _ -> fail ()
  in
  let pp ppf (p : Dmx_net.Chaos.partition) =
    Format.fprintf ppf "%s@%gs-%gs"
      (String.concat "|"
         (List.map
            (fun g -> String.concat "," (List.map string_of_int g))
            p.Dmx_net.Chaos.groups))
      p.Dmx_net.Chaos.from_t p.Dmx_net.Chaos.until
  in
  Arg.conv (parse, pp)

let cluster_cmd =
  let cn_arg =
    Arg.(
      value & opt int 5
      & info [ "n"; "sites" ] ~docv:"N" ~doc:"Number of node processes.")
  in
  let transport_arg =
    Arg.(
      value & opt string "tcp"
      & info [ "transport" ] ~docv:"KIND"
          ~doc:
            "Transport between nodes: tcp (streams, lossless) or udp \
             (datagrams, genuinely lossy).")
  in
  let reorder_arg =
    Arg.(
      value & opt float 0.0
      & info [ "reorder" ] ~docv:"P"
          ~doc:
            "Per-frame probability of a bounded holdback (chaos shim), in \
             [0,1).")
  in
  let cpartition_arg =
    Arg.(
      value & opt_all cluster_partition_conv []
      & info [ "partition" ] ~docv:"GROUPS@FROM-UNTIL"
          ~doc:
            "Partition the cluster into groups for a window of seconds \
             after the workload starts, e.g. \
             $(b,--partition 0,1|2,3,4\\@1s-2s) (sites comma-separated, \
             groups |-separated; unlisted sites form one extra group). \
             Repeatable.")
  in
  let cspike_arg =
    Arg.(
      value & opt_all spike_conv []
      & info [ "spike" ] ~docv:"FROM:UNTIL:EXTRA"
          ~doc:
            "Hold every frame sent between FROM and UNTIL (seconds after \
             workload start) for EXTRA extra seconds. Repeatable.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~docv:"COUNT"
          ~doc:"CS entries each site must complete.")
  in
  let ccs_arg =
    Arg.(
      value & opt float 0.001
      & info [ "cs" ] ~docv:"SECONDS" ~doc:"Wall-clock time inside the CS.")
  in
  let kill_arg =
    Arg.(
      value & opt_all at_conv []
      & info [ "kill" ] ~docv:"SITE@TIME"
          ~doc:
            "SIGKILL a node this long after the workload starts \
             (repeatable), e.g. $(b,--kill 1\\@2s).")
  in
  let restart_arg =
    Arg.(
      value & opt_all at_conv []
      & info [ "restart" ] ~docv:"SITE@TIME"
          ~doc:
            "Respawn a killed node with fresh state (repeatable), e.g. \
             $(b,--restart 1\\@4s).")
  in
  let log_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "log-dir" ] ~docv:"DIR"
          ~doc:"Write per-node stderr logs into $(docv).")
  in
  let trace_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the merged, time-sorted trace to $(docv).")
  in
  let timeout_arg =
    Arg.(
      value & opt float 60.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Hard wall-clock bound on the whole run.")
  in
  let metrics_arg =
    Arg.(
      value & opt int 0
      & info [ "metrics-base-port" ] ~docv:"PORT"
          ~doc:
            "Each node serves its metrics registry over HTTP on \
             $(docv)+site (Prometheus text at /metrics, JSON at \
             /metrics.json); 0 disables.")
  in
  let action n protocol quorum rounds cs seed kills restarts log_dir trace_out
      timeout hb hbto rto transport loss dup reorder partitions spikes
      metrics_base_port csv =
    let chaos =
      {
        Dmx_net.Chaos.no_faults with
        Dmx_net.Chaos.loss;
        duplication = dup;
        reorder;
        partitions;
        delay_spikes = spikes;
      }
    in
    let cfg =
      {
        Dmx_net.Cluster.n;
        protocol;
        quorum;
        rounds;
        cs_duration = cs;
        seed;
        kills;
        restarts;
        log_dir;
        timeout;
        hb_period = hb;
        hb_timeout = hbto;
        rto;
        transport;
        chaos;
        hello_timeout = 10.0;
        ports = None;
        metrics_base_port;
      }
    in
    match Dmx_net.Cluster.run cfg with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok o ->
      (match trace_out with
      | Some file ->
        let oc = open_out file in
        let ppf = Format.formatter_of_out_channel oc in
        List.iter
          (fun e -> Format.fprintf ppf "%a@." Dmx_sim.Trace.pp_entry e)
          o.Dmx_net.Cluster.entries;
        Format.pp_print_flush ppf ();
        close_out oc
      | None -> ());
      let r = o.Dmx_net.Cluster.report in
      if csv then begin
        print_endline csv_header;
        print_endline (csv_line r "cluster")
      end
      else Format.printf "%a@." Dmx_net.Cluster.pp_outcome o;
      let ok =
        r.E.violations = 0 && Dmx_sim.Oracle.ok o.Dmx_net.Cluster.verdict
      in
      exit (if ok then 0 else 2)
  in
  let term =
    Term.(
      const action $ cn_arg $ proto_arg $ quorum_arg $ rounds_arg $ ccs_arg
      $ seed_arg $ kill_arg $ restart_arg $ log_dir_arg $ trace_out_arg
      $ timeout_arg $ hb_arg $ hbto_arg $ rto_arg $ transport_arg $ loss_arg
      $ dup_arg $ reorder_arg $ cpartition_arg $ cspike_arg $ metrics_arg
      $ csv_arg)
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run a real multi-process cluster on localhost (TCP streams or \
          UDP datagrams): spawn N node daemons, drive a workload, \
          optionally kill/restart sites and inject seeded chaos \
          ($(b,--loss), $(b,--dup), $(b,--reorder), $(b,--partition), \
          $(b,--spike)) mid-run, then merge the live traces and check \
          them with the oracle (exit 2 on any violation).")
    term

let node_cmd =
  let site_arg =
    Arg.(
      required & opt (some int) None
      & info [ "site" ] ~docv:"I" ~doc:"This node's site id.")
  in
  let ports_arg =
    Arg.(
      required & opt (some (list int)) None
      & info [ "peers"; "ports" ] ~docv:"P0,P1,..."
          ~doc:
            "Listen port of every site in id order (this node binds entry \
             $(b,--site)).")
  in
  let sup_arg =
    Arg.(
      required & opt (some int) None
      & info [ "supervisor" ] ~docv:"PORT" ~doc:"Supervisor port.")
  in
  let epoch_arg =
    Arg.(
      value & opt (some float) None
      & info [ "epoch" ] ~docv:"T"
          ~doc:
            "Cluster time zero as an absolute Unix timestamp (all nodes \
             must share it); defaults to this node's start time.")
  in
  let max_arg =
    Arg.(
      value & opt float 600.0
      & info [ "max-seconds" ] ~docv:"SECONDS"
          ~doc:"Failsafe wall-clock limit on the node's lifetime.")
  in
  let quorum_str_arg =
    Arg.(
      value & opt string "tree"
      & info [ "quorum" ] ~docv:"KIND"
          ~doc:"Quorum construction (same spellings as elsewhere).")
  in
  let transport_arg =
    Arg.(
      value & opt string "tcp"
      & info [ "transport" ] ~docv:"KIND"
          ~doc:"Transport: tcp or udp (must match the rest of the cluster).")
  in
  let mport_arg =
    Arg.(
      value & opt int 0
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve this node's metrics registry over HTTP on $(docv) \
             (/metrics and /metrics.json); 0 disables.")
  in
  let action site ports sup protocol quorum seed epoch hb hbto rto max_s
      transport metrics_port =
    let spec =
      {
        Dmx_net.Node.site;
        n = List.length ports;
        node_ports = Array.of_list ports;
        supervisor_port = sup;
        protocol;
        quorum;
        seed;
        epoch =
          (match epoch with Some e -> e | None -> Unix.gettimeofday ());
        hb_period = hb;
        hb_timeout = hbto;
        rto;
        max_seconds = max_s;
        transport;
        chaos = Dmx_net.Chaos.no_faults;
        metrics_port;
      }
    in
    match Dmx_net.Node.run_named spec with
    | Ok () -> ()
    | Error e ->
      prerr_endline e;
      exit 1
  in
  let term =
    Term.(
      const action $ site_arg $ ports_arg $ sup_arg $ proto_arg
      $ quorum_str_arg $ seed_arg $ epoch_arg $ hb_arg $ hbto_arg $ rto_arg
      $ max_arg $ transport_arg $ mport_arg)
  in
  Cmd.v
    (Cmd.info "node"
       ~doc:
         "Run one networked protocol site until its supervisor says \
          shutdown — the daemon $(b,dmx-sim cluster) spawns, exposed for \
          manual or multi-host use.")
    term

(* ---- swarm: the sharded lock service ---- *)

let swarm_cmd =
  let sn_arg =
    Arg.(
      value & opt int 5
      & info [ "n"; "sites" ] ~docv:"N" ~doc:"Number of service nodes.")
  in
  let clients_arg =
    Arg.(
      value & opt int 64
      & info [ "clients"; "c" ] ~docv:"COUNT"
          ~doc:"Closed-loop client population.")
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"COUNT"
          ~doc:
            "Independent protocol instances the lock namespace is hashed \
             across.")
  in
  let locks_arg =
    Arg.(
      value & opt int 0
      & info [ "locks" ] ~docv:"COUNT"
          ~doc:"Distinct lock names (0 = one per client).")
  in
  let srounds_arg =
    Arg.(
      value & opt int 3
      & info [ "rounds" ] ~docv:"COUNT"
          ~doc:"Acquire/release cycles each client completes.")
  in
  let think_arg =
    Arg.(
      value & opt float 0.05
      & info [ "think" ] ~docv:"SECONDS"
          ~doc:"Mean think time between a client's rounds (exponential).")
  in
  let hold_arg =
    Arg.(
      value & opt float 0.002
      & info [ "hold" ] ~docv:"SECONDS"
          ~doc:"How long a client keeps a granted lock before releasing.")
  in
  let lease_arg =
    Arg.(
      value & opt float 2.0
      & info [ "lease" ] ~docv:"SECONDS"
          ~doc:
            "Lease duration: an unrenewed hold is expired this long after \
             its grant (or last renewal).")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"COUNT"
          ~doc:"Leases served per protocol critical-section tenure.")
  in
  let abandon_arg =
    Arg.(
      value & opt float 0.0
      & info [ "abandon" ] ~docv:"P"
          ~doc:
            "Probability a granted client vanishes without releasing, \
             leaving cleanup to lease expiry.")
  in
  let kill_arg =
    Arg.(
      value & opt_all at_conv []
      & info [ "kill" ] ~docv:"NODE@TIME"
          ~doc:
            "SIGKILL a service node this long after the swarm starts \
             (repeatable); its sessions re-home to live nodes.")
  in
  let restart_arg =
    Arg.(
      value & opt_all at_conv []
      & info [ "restart" ] ~docv:"NODE@TIME"
          ~doc:"Respawn a killed node with fresh state (repeatable).")
  in
  let log_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "log-dir" ] ~docv:"DIR"
          ~doc:"Write per-node stderr logs into $(docv).")
  in
  let timeout_arg =
    Arg.(
      value & opt float 120.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Hard bound on the whole run (wall clock, or virtual time \
                with $(b,--sim)).")
  in
  let transport_arg =
    Arg.(
      value & opt string "tcp"
      & info [ "transport" ] ~docv:"KIND"
          ~doc:"Transport between processes: tcp or udp.")
  in
  let sim_arg =
    Arg.(
      value & flag
      & info [ "sim" ]
          ~doc:
            "Run the deterministic virtual-time simulator instead of live \
             processes: same host logic, same client machines, seeded link \
             latencies — identical output for identical seeds.")
  in
  let latency_arg =
    Arg.(
      value & opt float 0.001
      & info [ "latency" ] ~docv:"SECONDS"
          ~doc:"Mean one-way link latency ($(b,--sim) only).")
  in
  let detect_delay_arg =
    Arg.(
      value & opt float 0.05
      & info [ "detect-delay" ] ~docv:"SECONDS"
          ~doc:"Peer failure-notification lag ($(b,--sim) only).")
  in
  let reorder_arg =
    Arg.(
      value & opt float 0.0
      & info [ "reorder" ] ~docv:"P"
          ~doc:
            "Per-frame probability of a bounded holdback (chaos shim, live \
             runs), in [0,1).")
  in
  let metrics_arg =
    Arg.(
      value & opt int 0
      & info [ "metrics-base-port" ] ~docv:"PORT"
          ~doc:
            "Each daemon serves its metrics registry over HTTP on \
             $(docv)+site (live runs only); 0 disables.")
  in
  let metrics_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the run's merged metrics snapshot (every node's final \
             registry plus the driver's own acquire-latency histograms) \
             as dmx-metrics/1 JSON to $(docv). Works for both live and \
             $(b,--sim) runs; under $(b,--sim) the file is a pure \
             function of the seed.")
  in
  let action n clients shards locks rounds think hold lease max_batch abandon
      protocol quorum seed kills restarts log_dir timeout hb hbto rto
      transport loss dup reorder sim latency detect_delay metrics_base_port
      metrics_out csv =
    let finish (o : Dmx_service.Swarm.outcome) =
      (match metrics_out with
      | Some file ->
        let snap =
          Dmx_obs.Snapshot.merge_all
            [ Dmx_service.Swarm.merged_snapshot o; o.driver_snapshot ]
        in
        let oc = open_out file in
        output_string oc (Dmx_obs.Export.json snap);
        close_out oc
      | None -> ());
      if csv then begin
        print_endline "shard,acquires,grants,expiries,p50_ms,p95_ms,p99_ms,ok";
        Array.iter
          (fun (s : Dmx_service.Swarm.shard_outcome) ->
            let p q =
              1000.0 *. Dmx_sim.Stats.Summary.percentile s.latency q
            in
            Printf.printf "%d,%d,%d,%d,%.3f,%.3f,%.3f,%b\n" s.shard
              s.acquires s.grants s.expiries (p 50.0) (p 95.0) (p 99.0)
              (Dmx_service.Swarm.shard_ok s))
          o.per_shard
      end
      else Format.printf "%a@." Dmx_service.Swarm.pp_outcome o;
      exit (if Dmx_service.Swarm.ok o then 0 else 2)
    in
    let result =
      if sim then
        Dmx_service.Sim_swarm.run_named
          {
            Dmx_service.Sim_swarm.n;
            shards;
            clients;
            locks;
            rounds;
            think;
            hold;
            lease;
            max_batch;
            abandon;
            protocol;
            quorum;
            seed;
            kills;
            restarts;
            latency;
            detect_delay;
            rto;
            max_time = timeout;
          }
      else
        Dmx_service.Swarm.run
          {
            Dmx_service.Swarm.n;
            shards;
            clients;
            locks;
            rounds;
            think;
            hold;
            lease;
            max_batch;
            abandon;
            protocol;
            quorum;
            seed;
            kills;
            restarts;
            log_dir;
            timeout;
            hb_period = hb;
            hb_timeout = hbto;
            rto;
            transport;
            chaos =
              {
                Dmx_net.Chaos.no_faults with
                Dmx_net.Chaos.loss;
                duplication = dup;
                reorder;
              };
            hello_timeout = 10.0;
            metrics_base_port;
          }
    in
    match result with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok o -> finish o
  in
  let term =
    Term.(
      const action $ sn_arg $ clients_arg $ shards_arg $ locks_arg
      $ srounds_arg $ think_arg $ hold_arg $ lease_arg $ batch_arg
      $ abandon_arg $ proto_arg $ quorum_arg $ seed_arg $ kill_arg
      $ restart_arg $ log_dir_arg $ timeout_arg $ hb_arg $ hbto_arg $ rto_arg
      $ transport_arg $ loss_arg $ dup_arg $ reorder_arg $ sim_arg
      $ latency_arg $ detect_delay_arg $ metrics_arg $ metrics_out_arg
      $ csv_arg)
  in
  Cmd.v
    (Cmd.info "swarm"
       ~doc:
         "Run the sharded lock service under a closed-loop client swarm: \
          hash a lock namespace across independent protocol instances \
          spread over N nodes, multiplex thousands of leased client \
          sessions over one connection per node, optionally kill and \
          restart nodes mid-run, then check every shard's merged trace \
          with the oracle and report per-shard acquire-latency \
          percentiles (exit 2 on any violation). $(b,--sim) runs the \
          deterministic virtual-time twin instead of live processes.")
    term

(* ---- top: live rates from a running cluster's scrape endpoints ---- *)

let top_cmd =
  let ports_arg =
    Arg.(
      non_empty & opt_all int []
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:
            "A metrics port to poll (repeatable) — what the daemons were \
             given via $(b,--metrics-base-port)/$(b,--metrics-port).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Host the daemons listen on.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval"; "i" ] ~docv:"SECONDS"
          ~doc:"Seconds between polls.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Exit after $(docv) polls (0 = run until interrupted).")
  in
  let no_clear_arg =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:"Append ticks instead of redrawing the screen.")
  in
  let action ports host interval count no_clear =
    if interval <= 0.0 then begin
      prerr_endline "top: interval must be positive";
      exit 1
    end;
    let fetch () =
      List.filter_map
        (fun port ->
          match Dmx_net.Scrape.http_get ~host ~port "/metrics.json" with
          | Ok (200, body) -> (
            match Dmx_model.Metrics_json.parse body with
            | Ok snap -> Some snap
            | Error e ->
              Printf.eprintf "top: port %d: %s\n%!" port e;
              None)
          | Ok (code, _) ->
            Printf.eprintf "top: port %d: HTTP %d\n%!" port code;
            None
          | Error e ->
            Printf.eprintf "top: port %d: %s\n%!" port e;
            None)
        ports
    in
    let render_key (s : Dmx_obs.Snapshot.series) =
      match s.labels with
      | [] -> s.name
      | ls ->
        s.name ^ "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
        ^ "}"
    in
    let render ~rates snap =
      List.iter
        (fun (s : Dmx_obs.Snapshot.series) ->
          match s.value with
          | Dmx_obs.Snapshot.Counter 0 -> ()
          | Dmx_obs.Snapshot.Counter v ->
            if rates then
              Printf.printf "%-52s %12.1f/s\n" (render_key s)
                (float_of_int v /. interval)
            else Printf.printf "%-52s %12d\n" (render_key s) v
          | Dmx_obs.Snapshot.Gauge v ->
            Printf.printf "%-52s %12d  gauge\n" (render_key s) v
          | Dmx_obs.Snapshot.Histogram h ->
            if h.count > 0 then
              Printf.printf "%-52s %12d obs  p50=%dus p99=%dus max=%dus\n"
                (render_key s) h.count
                (Dmx_obs.Snapshot.quantile h 50.0)
                (Dmx_obs.Snapshot.quantile h 99.0)
                h.max)
        snap
    in
    let prev = ref None in
    let tick i =
      let snaps = fetch () in
      if snaps = [] && i = 0 then begin
        prerr_endline "top: no endpoint answered";
        exit 1
      end;
      let merged = Dmx_obs.Snapshot.merge_all snaps in
      let window =
        Option.map (fun p -> Dmx_obs.Snapshot.diff ~older:p ~newer:merged) !prev
      in
      prev := Some merged;
      if not no_clear then print_string "\027[2J\027[H";
      (match window with
      | None ->
        Printf.printf "dmx-sim top — %d/%d endpoint(s), totals (rates from \
                       the next poll)\n"
          (List.length snaps) (List.length ports);
        render ~rates:false merged
      | Some w ->
        Printf.printf "dmx-sim top — %d/%d endpoint(s), last %.1fs\n"
          (List.length snaps) (List.length ports) interval;
        render ~rates:true w);
      flush stdout
    in
    let i = ref 0 in
    while count = 0 || !i < count do
      tick !i;
      incr i;
      if count = 0 || !i < count then Unix.sleepf interval
    done
  in
  let term =
    Term.(
      const action $ ports_arg $ host_arg $ interval_arg $ count_arg
      $ no_clear_arg)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Poll the /metrics.json scrape endpoints of a running cluster or \
          swarm and redraw a merged live view: counter rates over the \
          poll interval, gauge values, histogram percentiles. Start the \
          daemons with $(b,--metrics-base-port) and point $(b,--port) at \
          them.")
    term

(* ---- bench-diff: the perf-snapshot ratchet ---- *)

let bench_diff_cmd =
  let old_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"OLD.json" ~doc:"Baseline dmx-bench/1 snapshot.")
  in
  let new_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"Candidate dmx-bench/1 snapshot.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 10.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Regression threshold as a percentage: fail when an \
             experiment's events/sec falls more than $(docv)% below the \
             baseline.")
  in
  let action old_file new_file pct =
    if pct <= 0.0 || pct >= 100.0 then begin
      prerr_endline "bench-diff: threshold must be in (0, 100)";
      exit 1
    end;
    let read_snapshot file =
      let contents =
        try In_channel.with_open_bin file In_channel.input_all
        with Sys_error e ->
          prerr_endline ("bench-diff: " ^ e);
          exit 1
      in
      match Dmx_model.Snapshot.parse contents with
      | Error e ->
        Printf.eprintf "bench-diff: %s: %s\n" file e;
        exit 1
      | Ok (snap, warnings) ->
        List.iter
          (fun w -> Printf.eprintf "bench-diff: %s: %s\n" file w)
          warnings;
        snap
    in
    let old_ = read_snapshot old_file in
    let new_ = read_snapshot new_file in
    let report =
      Dmx_model.Bench_diff.compare ~threshold:(pct /. 100.0) old_ new_
    in
    Format.printf "%a@?" Dmx_model.Bench_diff.pp_report report;
    exit (if report.Dmx_model.Bench_diff.regressions > 0 then 2 else 0)
  in
  let term = Term.(const action $ old_arg $ new_arg $ threshold_arg) in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two dmx-bench/1 perf snapshots experiment by experiment \
          and exit 2 when any experiment's events/sec regressed beyond \
          the threshold — the CI ratchet over $(b,dmx-sim bench --json) \
          output. Zero-event experiments and experiments present in only \
          one snapshot never fail the diff.")
    term

let () =
  let doc =
    "Delay-optimal quorum-based distributed mutual exclusion (ICDCS'98) — \
     simulator front end"
  in
  let info = Cmd.info "dmx-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            compare_cmd;
            sweep_cmd;
            bench_cmd;
            validate_cmd;
            quorums_cmd;
            avail_cmd;
            trace_cmd;
            replay_cmd;
            cluster_cmd;
            node_cmd;
            swarm_cmd;
            top_cmd;
            bench_diff_cmd;
          ]))
